"""Tests for the pairwise alignment renderer."""

import numpy as np
import pytest

from repro.blast.hsp import OP_DIAG, OP_QGAP, OP_SGAP, Alignment
from repro.blast.pairwise import alignment_rows, format_pairwise, format_report
from repro.sequence.alphabet import encode


def simple_alignment(path, q_start=0, s_start=0, q_span=None, s_span=None, **kw):
    path = np.asarray(path, dtype=np.uint8)
    q_span = int(np.count_nonzero(path != OP_QGAP))
    s_span = int(np.count_nonzero(path != OP_SGAP))
    base = dict(
        query_id="q", subject_id="s", q_start=q_start, q_end=q_start + q_span,
        s_start=s_start, s_end=s_start + s_span, score=10, evalue=1e-9, bits=25.0,
        matches=4, mismatches=1, gap_columns=1, path=path,
    )
    base.update(kw)
    return Alignment(**base)


class TestAlignmentRows:
    def test_matches_and_mismatch(self):
        q = encode("ACGTT")
        s = encode("ACCTT")
        aln = simple_alignment([OP_DIAG] * 5)
        q_row, m_row, s_row = alignment_rows(aln, q, s)
        assert q_row == "ACGTT"
        assert s_row == "ACCTT"
        assert m_row == "|| ||"

    def test_gap_in_subject(self):
        q = encode("ACGT")
        s = encode("ACT")
        aln = simple_alignment([OP_DIAG, OP_DIAG, OP_SGAP, OP_DIAG])
        q_row, m_row, s_row = alignment_rows(aln, q, s)
        assert q_row == "ACGT"
        assert s_row == "AC-T"
        assert m_row == "|| |"

    def test_gap_in_query(self):
        q = encode("ACT")
        s = encode("ACGT")
        aln = simple_alignment([OP_DIAG, OP_DIAG, OP_QGAP, OP_DIAG])
        q_row, _, s_row = alignment_rows(aln, q, s)
        assert q_row == "AC-T"
        assert s_row == "ACGT"

    def test_requires_path(self):
        aln = Alignment(
            query_id="q", subject_id="s", q_start=0, q_end=4, s_start=0, s_end=4,
            score=4, evalue=1e-9, bits=10.0,
        )
        with pytest.raises(ValueError, match="path"):
            alignment_rows(aln, encode("ACGT"), encode("ACGT"))


class TestFormatPairwise:
    def test_header_contents(self):
        q = encode("ACGTT")
        out = format_pairwise(simple_alignment([OP_DIAG] * 5), q, encode("ACCTT"))
        assert "> s" in out
        assert "Score = 25.0 bits (10)" in out
        assert "Expect = 1e-09" in out
        assert "Identities = 4/5" in out

    def test_one_based_coordinates(self):
        q = encode("ACGTT")
        out = format_pairwise(
            simple_alignment([OP_DIAG] * 5, q_start=0, s_start=0), q, encode("ACCTT")
        )
        assert "Query  1  ACGTT  5" in out
        assert "Sbjct  1  ACCTT  5" in out

    def test_wrapping(self):
        n = 150
        q = encode("A" * n)
        aln = simple_alignment([OP_DIAG] * n, matches=n, mismatches=0, gap_columns=0)
        out = format_pairwise(aln, q, q, line_width=60)
        query_lines = [ln for ln in out.splitlines() if ln.startswith("Query")]
        assert len(query_lines) == 3  # 60 + 60 + 30
        assert query_lines[1].split()[1] == "61"  # second block starts at 61

    def test_gap_does_not_advance_coordinate(self):
        q = encode("ACT")
        s = encode("ACGT")
        out = format_pairwise(
            simple_alignment([OP_DIAG, OP_DIAG, OP_QGAP, OP_DIAG]), q, s
        )
        assert "Query  1  AC-T  3" in out
        assert "Sbjct  1  ACGT  4" in out

    def test_bad_width_rejected(self):
        q = encode("AC")
        with pytest.raises(ValueError):
            format_pairwise(simple_alignment([OP_DIAG] * 2), q, q, line_width=0)


class TestFormatReport:
    def test_engine_output_renders(self, engine, small_db, query_with_truth, serial_result):
        query, _ = query_with_truth
        report = format_report(
            serial_result.alignments[:3],
            query.codes,
            lambda sid: small_db[sid].codes,
        )
        assert report.count("> ") == 3
        assert "Query" in report and "Sbjct" in report

    def test_identity_bars_match_composition(self, engine, small_db, query_with_truth, serial_result):
        """The match row's '|' count equals the alignment's match count."""
        query, _ = query_with_truth
        aln = serial_result.alignments[0]
        _, m_row, _ = alignment_rows(aln, query.codes, small_db[aln.subject_id].codes)
        assert m_row.count("|") == aln.matches
