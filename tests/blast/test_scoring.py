"""Tests for the scoring scheme."""

import numpy as np
import pytest

from repro.blast.params import BlastParams
from repro.blast.scoring import ScoringScheme
from repro.sequence.alphabet import encode


class TestScoringScheme:
    def test_from_params(self):
        s = ScoringScheme.from_params(BlastParams())
        assert (s.reward, s.penalty) == (1, -3)

    def test_match_probability_uniform(self):
        assert ScoringScheme(1, -3).match_probability == pytest.approx(0.25)

    def test_match_probability_skewed(self):
        s = ScoringScheme(1, -3, base_freqs=(0.4, 0.1, 0.1, 0.4))
        assert s.match_probability == pytest.approx(0.34)

    def test_score_pmf(self):
        pmf = ScoringScheme(1, -3).score_pmf()
        assert pmf == {1: 0.25, -3: 0.75}

    def test_expected_score_negative(self):
        assert ScoringScheme(1, -3).expected_score() < 0

    def test_validation(self):
        with pytest.raises(ValueError):
            ScoringScheme(0, -3)
        with pytest.raises(ValueError):
            ScoringScheme(1, 3)
        with pytest.raises(ValueError):
            ScoringScheme(1, -3, base_freqs=(0.5, 0.5, 0.0, 0.0))


class TestPairScores:
    def test_match_mismatch(self):
        s = ScoringScheme(1, -3)
        out = s.pair_scores(encode("ACGT"), encode("AGGA"))
        assert out.tolist() == [1, -3, 1, -3]

    def test_n_never_matches(self):
        s = ScoringScheme(1, -3)
        out = s.pair_scores(encode("NN"), encode("NA"))
        assert out.tolist() == [-3, -3]

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            ScoringScheme(1, -3).pair_scores(encode("AC"), encode("ACG"))
