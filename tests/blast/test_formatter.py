"""Tests for tabular formatting (the parsed-output contract of Section IV-B)."""

import numpy as np
import pytest

from repro.blast.formatter import (
    TABULAR_COLUMNS,
    format_tabular,
    format_tabular_row,
    parse_tabular,
)
from repro.blast.hsp import MINUS_STRAND, Alignment


def _aln(**kw):
    base = dict(
        query_id="q1", subject_id="s1", q_start=9, q_end=29, s_start=99, s_end=119,
        score=20, evalue=1.5e-8, bits=40.2, matches=18, mismatches=2,
        gap_opens=0, gap_columns=0,
    )
    base.update(kw)
    return Alignment(**base)


class TestFormat:
    def test_column_count(self):
        row = format_tabular_row(_aln())
        assert len(row.split("\t")) == len(TABULAR_COLUMNS)

    def test_one_based_inclusive_coordinates(self):
        fields = format_tabular_row(_aln()).split("\t")
        assert fields[6] == "10"  # qstart: 9 -> 10
        assert fields[7] == "29"  # qend stays (half-open -> inclusive)
        assert fields[8] == "100"
        assert fields[9] == "119"

    def test_minus_strand_swaps_subject(self):
        fields = format_tabular_row(_aln(strand=MINUS_STRAND)).split("\t")
        assert int(fields[8]) > int(fields[9])

    def test_multiple_rows(self):
        text = format_tabular([_aln(), _aln(q_start=50, q_end=70)])
        assert len(text.splitlines()) == 2


class TestParse:
    def test_round_trip(self):
        a = _aln()
        rows = parse_tabular(format_tabular([a]))
        assert len(rows) == 1
        row = rows[0]
        assert row["qseqid"] == "q1"
        assert row["sseqid"] == "s1"
        assert row["qstart"] == 10
        assert row["send"] == 119
        assert row["mismatch"] == 2
        assert row["evalue"] == pytest.approx(1.5e-8)

    def test_comments_and_blanks_skipped(self):
        text = "# header\n\n" + format_tabular_row(_aln())
        assert len(parse_tabular(text)) == 1

    def test_malformed_row_rejected(self):
        with pytest.raises(ValueError, match="expected 12 columns"):
            parse_tabular("a\tb\tc")

    def test_pident_from_identity(self):
        from repro.blast.hsp import OP_DIAG

        a = _aln(path=np.array([OP_DIAG] * 20, dtype=np.uint8))
        row = parse_tabular(format_tabular_row(a))[0]
        assert row["pident"] == pytest.approx(90.0)  # 18/20
        assert row["length"] == 20
