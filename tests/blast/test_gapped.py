"""Tests for banded gapped x-drop extension.

The vectorized banded DP is checked against an unpruned naive DP (equal when
x_drop is large enough to disable pruning) and for internal consistency
(traceback path rescoring reproduces the DP score exactly).
"""

import numpy as np
import pytest

from repro.blast.gapped import extend_gapped
from repro.blast.hsp import OP_DIAG, score_path
from repro.sequence.alphabet import encode, random_bases

PARAMS = dict(reward=1, penalty=-3, gap_open=5, gap_extend=2)


def naive_best_extension(q, s, reward, penalty, gap_open, gap_extend):
    """Unpruned affine 'extension' DP: best prefix-alignment score from (0,0)."""
    m, n = len(q), len(s)
    neg = -(10**9)
    H = np.full((m + 1, n + 1), neg, dtype=np.int64)
    E = np.full((m + 1, n + 1), neg, dtype=np.int64)
    F = np.full((m + 1, n + 1), neg, dtype=np.int64)
    H[0, 0] = 0
    for j in range(1, n + 1):
        E[0, j] = -(gap_open + gap_extend * j)
        H[0, j] = E[0, j]
    for i in range(1, m + 1):
        F[i, 0] = -(gap_open + gap_extend * i)
        H[i, 0] = F[i, 0]
        for j in range(1, n + 1):
            sub = reward if (q[i - 1] == s[j - 1] and q[i - 1] < 4) else penalty
            E[i, j] = max(E[i, j - 1] - gap_extend, H[i, j - 1] - gap_open - gap_extend)
            F[i, j] = max(F[i - 1, j] - gap_extend, H[i - 1, j] - gap_open - gap_extend)
            H[i, j] = max(H[i - 1, j - 1] + sub, E[i, j], F[i, j])
    return max(0, int(H.max()))


class TestAgainstNaiveDP:
    @pytest.mark.parametrize("seed", range(6))
    def test_large_xdrop_equals_unpruned(self, seed):
        rng = np.random.default_rng(seed)
        q = random_bases(rng, 40)
        s = random_bases(rng, 40)
        ext = extend_gapped(q, s, 0, 0, x_drop=10_000, keep_traceback=False, **PARAMS)
        assert ext.score == naive_best_extension(q, s, **PARAMS)

    @pytest.mark.parametrize("seed", range(4))
    def test_homologous_pair_large_xdrop(self, seed):
        rng = np.random.default_rng(100 + seed)
        base = random_bases(rng, 60)
        q = base.copy()
        s = base.copy()
        # a few substitutions and a small deletion in s
        s[10] = (s[10] + 1) % 4
        s = np.concatenate([s[:30], s[33:]])
        ext = extend_gapped(q, s, 0, 0, x_drop=10_000, keep_traceback=False, **PARAMS)
        assert ext.score == naive_best_extension(q, s, **PARAMS)


class TestTracebackConsistency:
    @pytest.mark.parametrize("seed", range(5))
    def test_path_rescoring_matches_dp_score(self, seed):
        rng = np.random.default_rng(200 + seed)
        base = random_bases(rng, 300)
        q = base.copy()
        s = base.copy()
        hit = rng.random(300) < 0.05
        s[hit] = (s[hit] + 1) % 4
        anchor = 150
        ext = extend_gapped(q, s, anchor, anchor, x_drop=15, **PARAMS)
        assert ext.path is not None
        rescored = score_path(
            ext.path, q, s, ext.q_start, ext.s_start,
            PARAMS["reward"], PARAMS["penalty"], PARAMS["gap_open"], PARAMS["gap_extend"],
        )
        assert rescored == ext.score

    def test_path_consumption_matches_intervals(self):
        rng = np.random.default_rng(9)
        base = random_bases(rng, 200)
        q, s = base.copy(), base.copy()
        s = np.concatenate([s[:100], random_bases(rng, 2), s[100:]])  # insertion
        ext = extend_gapped(q, s, 50, 50, x_drop=15, **PARAMS)
        assert ext.path is not None
        from repro.blast.hsp import OP_QGAP, OP_SGAP

        q_span = int(np.count_nonzero(ext.path != OP_QGAP))
        s_span = int(np.count_nonzero(ext.path != OP_SGAP))
        assert q_span == ext.q_span
        assert s_span == ext.s_span


class TestExtensionBehaviour:
    def test_perfect_match_full_span(self):
        q = encode("ACGTACGTACGTACGT")
        ext = extend_gapped(q, q, 8, 8, x_drop=15, **PARAMS)
        assert ext.score == 16
        assert (ext.q_start, ext.q_end) == (0, 16)
        assert np.all(ext.path == OP_DIAG)

    def test_anchor_at_edges(self):
        q = encode("ACGTACGT")
        ext = extend_gapped(q, q, 0, 0, x_drop=15, **PARAMS)
        assert ext.score == 8
        ext2 = extend_gapped(q, q, 8, 8, x_drop=15, **PARAMS)
        assert ext2.score == 8

    def test_bad_anchor_rejected(self):
        q = encode("ACGT")
        with pytest.raises(ValueError):
            extend_gapped(q, q, 5, 0, x_drop=15, **PARAMS)

    def test_no_homology_zero_extension(self):
        q = encode("A" * 30)
        s = encode("C" * 30)
        ext = extend_gapped(q, s, 15, 15, x_drop=15, **PARAMS)
        assert ext.score == 0
        assert ext.q_start == ext.q_end == 15

    def test_gap_crossing(self):
        """Two matching blocks separated by an insertion in the subject."""
        rng = np.random.default_rng(3)
        block = random_bases(rng, 40)
        q = np.concatenate([block, block])
        s = np.concatenate([block, random_bases(rng, 3), block])
        ext = extend_gapped(q, s, 10, 10, x_drop=20, **PARAMS)
        # 80 matches minus one gap of 3: 80 - (5 + 3*2) = 69
        assert ext.score == 69
        assert ext.q_span == 80
        assert ext.s_span == 83


class TestParameterValidation:
    """Regression: degenerate affine params must fail fast with ValueError.

    ``gap_extend=0`` used to reach ``budget // gap_extend`` inside the DP's
    ``gap_reach`` and die with an uncaught ``ZeroDivisionError``.
    """

    def setup_method(self):
        self.q = encode("ACGTACGT")

    def test_zero_gap_extend_raises_value_error(self):
        with pytest.raises(ValueError, match="gap_extend"):
            extend_gapped(self.q, self.q, 4, 4, 1, -3, 5, 0, 15)

    def test_negative_gap_extend_raises_value_error(self):
        with pytest.raises(ValueError, match="gap_extend"):
            extend_gapped(self.q, self.q, 4, 4, 1, -3, 5, -2, 15)

    def test_negative_gap_open_raises_value_error(self):
        with pytest.raises(ValueError, match="gap_open"):
            extend_gapped(self.q, self.q, 4, 4, 1, -3, -1, 2, 15)

    def test_negative_x_drop_raises_value_error(self):
        with pytest.raises(ValueError, match="x_drop"):
            extend_gapped(self.q, self.q, 4, 4, 1, -3, 5, 2, -1)

    @pytest.mark.parametrize("kernel", ["rowloop", "wavefront"])
    def test_validation_applies_to_both_kernels(self, kernel):
        with pytest.raises(ValueError, match="gap_extend"):
            extend_gapped(self.q, self.q, 4, 4, 1, -3, 5, 0, 15, kernel=kernel)

    def test_unknown_kernel_raises_value_error(self):
        with pytest.raises(ValueError, match="kernel"):
            extend_gapped(self.q, self.q, 4, 4, 1, -3, 5, 2, 15, kernel="simd")

    def test_zero_gap_open_is_legal(self):
        ext = extend_gapped(self.q, self.q, 4, 4, 1, -3, 0, 2, 15)
        assert ext.score == 8


class TestReversedHalfMaterialization:
    """Regression: the left half must see a contiguous reversed prefix.

    ``q_codes[:anchor][::-1]`` is a negative-stride view; ``extend_gapped``
    materializes it once per call. Same alignment either way — this pins the
    behaviour while exercising anchors at every position of a small pair.
    """

    @pytest.mark.parametrize("kernel", ["rowloop", "wavefront"])
    def test_every_anchor_matches_negative_stride_views(self, kernel):
        from repro.blast.gapped import _run_half

        rng = np.random.default_rng(11)
        base = random_bases(rng, 64)
        q, s = base.copy(), base.copy()
        s[20] = (s[20] + 1) % 4
        for anchor in range(0, 65, 8):
            ext = extend_gapped(q, s, anchor, anchor, x_drop=15, kernel=kernel, **PARAMS)
            # Reference: the pre-fix behaviour — feed the raw negative-stride
            # reversed views straight into the half kernel.
            left = _run_half(
                kernel, q[:anchor][::-1], s[:anchor][::-1],
                PARAMS["reward"], PARAMS["penalty"],
                PARAMS["gap_open"], PARAMS["gap_extend"], 15, False, True,
            )
            right = _run_half(
                kernel, q[anchor:], s[anchor:],
                PARAMS["reward"], PARAMS["penalty"],
                PARAMS["gap_open"], PARAMS["gap_extend"], 15, False, True,
            )
            assert ext.score == left.score + right.score
            assert (ext.q_start, ext.q_end) == (anchor - left.qi, anchor + right.qi)
            assert (ext.s_start, ext.s_end) == (anchor - left.sj, anchor + right.sj)
            expected_path = np.concatenate([left.path[::-1], right.path])
            assert np.array_equal(ext.path, expected_path)

    def test_non_contiguous_input_accepted(self):
        """Strided (non-contiguous) inputs work: views into larger arrays."""
        rng = np.random.default_rng(12)
        big = random_bases(rng, 120)
        q = big[::2]  # stride-2 view, 60 bases
        s = np.ascontiguousarray(q)
        ext = extend_gapped(q, s, 30, 30, x_drop=15, **PARAMS)
        assert ext.score == 60


class TestAbsoluteDrop:
    def test_speculative_extends_through_deep_dip(self):
        """A dip deeper than x_drop (relative) but shallower than the
        absolute floor: relative mode stops at the dip, absolute crosses."""
        rng = np.random.default_rng(4)
        left = random_bases(rng, 30)
        right = random_bases(rng, 30)
        dip = random_bases(rng, 7)
        dip_bad = (dip + 1) % 4  # 7 mismatches = -21 against x_drop 15
        q = np.concatenate([left, dip, right])
        s = np.concatenate([left, dip_bad, right])
        rel = extend_gapped(q, s, 0, 0, x_drop=15, absolute_drop=False, **PARAMS)
        abs_ = extend_gapped(q, s, 0, 0, x_drop=40, absolute_drop=True, **PARAMS)
        assert rel.q_end <= 40  # stopped at/near the dip
        assert abs_.q_end == 67  # crossed it (peak at the far end)

    def test_absolute_never_below_floor(self):
        q = encode("A" * 50)
        s = encode("C" * 50)
        ext = extend_gapped(q, s, 0, 0, x_drop=10, absolute_drop=True, **PARAMS)
        assert ext.score == 0
