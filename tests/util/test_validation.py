"""Tests for the validation helpers."""

import pytest

from repro.util.validation import (
    check_fraction,
    check_in,
    check_nonnegative,
    check_positive,
    check_type,
)


class TestCheckPositive:
    def test_accepts_positive(self):
        assert check_positive("x", 3) == 3

    @pytest.mark.parametrize("bad", [0, -1, -0.5])
    def test_rejects(self, bad):
        with pytest.raises(ValueError, match="x must be positive"):
            check_positive("x", bad)


class TestCheckNonnegative:
    def test_accepts_zero(self):
        assert check_nonnegative("x", 0) == 0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_nonnegative("x", -1)


class TestCheckFraction:
    @pytest.mark.parametrize("ok", [0.0, 0.5, 1.0])
    def test_inclusive(self, ok):
        assert check_fraction("f", ok) == ok

    def test_exclusive_rejects_endpoints(self):
        with pytest.raises(ValueError):
            check_fraction("f", 0.0, inclusive=False)
        with pytest.raises(ValueError):
            check_fraction("f", 1.0, inclusive=False)

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            check_fraction("f", 1.5)


class TestCheckIn:
    def test_accepts_member(self):
        assert check_in("mode", "a", ("a", "b")) == "a"

    def test_rejects_nonmember(self):
        with pytest.raises(ValueError, match="mode"):
            check_in("mode", "c", ("a", "b"))


class TestCheckType:
    def test_accepts(self):
        assert check_type("n", 3, int) == 3

    def test_rejects_with_names(self):
        with pytest.raises(TypeError, match="n must be int, got str"):
            check_type("n", "3", int)
