"""Tests for ASCII table/series rendering."""

import pytest

from repro.util.textio import format_cell, render_series, render_table


class TestFormatCell:
    def test_bool(self):
        assert format_cell(True) == "yes"
        assert format_cell(False) == "no"

    def test_float_sig_digits(self):
        assert format_cell(12.3456) == "12.35"

    def test_float_scientific_for_extremes(self):
        assert "e" in format_cell(1.5e-7)
        assert "e" in format_cell(1.5e7)

    def test_zero(self):
        assert format_cell(0.0) == "0"

    def test_str_passthrough(self):
        assert format_cell("orion") == "orion"


class TestRenderTable:
    def test_alignment_and_rule(self):
        out = render_table(["name", "t"], [["orion", 1.5], ["mpiblast", 20.0]])
        lines = out.splitlines()
        assert lines[0].startswith("name")
        assert set(lines[1]) <= {"-", " "}
        assert lines[2].startswith("orion")

    def test_title(self):
        out = render_table(["a"], [[1]], title="Table III")
        assert out.splitlines()[0] == "Table III"

    def test_column_count_mismatch_rejected(self):
        with pytest.raises(ValueError, match="row 0"):
            render_table(["a", "b"], [[1]])

    def test_wide_cells_expand_columns(self):
        out = render_table(["x"], [["very-long-cell-content"]])
        header, rule, row = out.splitlines()
        assert len(rule) == len("very-long-cell-content")


class TestRenderSeries:
    def test_shapes(self):
        out = render_series(
            "cores", ["orion", "mpiblast"], [64, 128], [[1.0, 2.0], [3.0, 4.0]]
        )
        lines = out.splitlines()
        assert lines[0].split()[0] == "cores"
        assert len(lines) == 4

    def test_ragged_series_rejected(self):
        with pytest.raises(ValueError):
            render_series("x", ["y"], [1, 2], [[1.0]])
