"""Tests for Stopwatch and duration formatting."""

import time

import pytest

from repro.util.timers import Stopwatch, TimerRegistry, format_seconds


class TestStopwatch:
    def test_measures_elapsed(self):
        sw = Stopwatch().start()
        time.sleep(0.01)
        elapsed = sw.stop()
        assert elapsed >= 0.009

    def test_context_manager(self):
        with Stopwatch() as sw:
            time.sleep(0.005)
        assert sw.elapsed >= 0.004
        assert not sw.running

    def test_accumulates_across_segments(self):
        sw = Stopwatch()
        sw.start()
        time.sleep(0.005)
        first = sw.stop()
        sw.start()
        time.sleep(0.005)
        total = sw.stop()
        assert total > first

    def test_double_start_rejected(self):
        sw = Stopwatch().start()
        with pytest.raises(RuntimeError):
            sw.start()

    def test_stop_without_start_rejected(self):
        with pytest.raises(RuntimeError):
            Stopwatch().stop()

    def test_reset(self):
        sw = Stopwatch().start()
        sw.stop()
        sw.reset()
        assert sw.elapsed == 0.0

    def test_live_elapsed_while_running(self):
        sw = Stopwatch().start()
        time.sleep(0.005)
        assert sw.elapsed > 0.0
        sw.stop()


class TestFormatSeconds:
    def test_milliseconds(self):
        assert format_seconds(0.95) == "950ms"

    def test_seconds(self):
        assert format_seconds(12.34) == "12.3s"

    def test_minutes(self):
        assert format_seconds(272) == "4m32s"

    def test_hours(self):
        assert format_seconds(2 * 3600 + 5 * 60) == "2h05m"

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            format_seconds(-1)


class TestTimerRegistry:
    def test_add_and_mean(self):
        reg = TimerRegistry()
        reg.add("seed", 1.0)
        reg.add("seed", 3.0)
        assert reg.totals["seed"] == 4.0
        assert reg.mean("seed") == 2.0

    def test_report_lines(self):
        reg = TimerRegistry()
        reg.add("a", 1.0)
        reg.add("bb", 2.0)
        lines = reg.report_lines()
        assert len(lines) == 2
        assert lines[0].startswith("a ")

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            TimerRegistry().add("x", -0.1)
