"""Tests for deterministic RNG plumbing."""

import numpy as np
import pytest

from repro.util.rng import RngStream, choice_without_replacement, derive_rng, spawn_rngs


class TestRngStream:
    def test_same_seed_same_stream(self):
        a = RngStream(42).generator.random(8)
        b = RngStream(42).generator.random(8)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = RngStream(1).generator.random(8)
        b = RngStream(2).generator.random(8)
        assert not np.array_equal(a, b)

    def test_none_seed_is_fixed_default(self):
        assert RngStream(None).seed == RngStream(0).seed

    def test_negative_seed_rejected(self):
        with pytest.raises(ValueError):
            RngStream(-1)

    def test_child_is_deterministic(self):
        a = RngStream(7).child("x").generator.random(4)
        b = RngStream(7).child("x").generator.random(4)
        assert np.array_equal(a, b)

    def test_children_are_independent(self):
        root = RngStream(7)
        a = root.child("a").generator.random(16)
        b = root.child("b").generator.random(16)
        assert not np.array_equal(a, b)

    def test_child_name_records_lineage(self):
        assert RngStream(0, name="root").child("gen").name == "root/gen"

    def test_children_list(self):
        kids = RngStream(3).children("task", 4)
        assert len(kids) == 4
        seeds = {k.seed for k in kids}
        assert len(seeds) == 4

    def test_adding_consumer_does_not_shift_existing(self):
        """New salts must not perturb existing derived streams."""
        before = RngStream(9).child("existing").seed
        _ = RngStream(9).child("new-consumer")
        after = RngStream(9).child("existing").seed
        assert before == after


class TestDeriveRng:
    def test_accepts_int(self):
        assert isinstance(derive_rng(5), np.random.Generator)

    def test_accepts_none(self):
        a = derive_rng(None).random(4)
        b = derive_rng(None).random(4)
        assert np.array_equal(a, b)

    def test_passthrough_generator(self):
        g = np.random.default_rng(1)
        assert derive_rng(g) is g

    def test_accepts_stream_with_salt(self):
        s = RngStream(11)
        a = derive_rng(s, "x").random(4)
        b = derive_rng(RngStream(11), "x").random(4)
        assert np.array_equal(a, b)

    def test_salt_changes_stream(self):
        a = derive_rng(11, "x").random(4)
        b = derive_rng(11, "y").random(4)
        assert not np.array_equal(a, b)


class TestSpawnRngs:
    def test_count_and_independence(self):
        gens = list(spawn_rngs(3, 5))
        assert len(gens) == 5
        draws = [g.random(8).tobytes() for g in gens]
        assert len(set(draws)) == 5

    def test_deterministic(self):
        a = [g.random(4).tobytes() for g in spawn_rngs(3, 3)]
        b = [g.random(4).tobytes() for g in spawn_rngs(3, 3)]
        assert a == b

    def test_generator_input_spawns(self):
        gens = list(spawn_rngs(np.random.default_rng(2), 3))
        assert len(gens) == 3


class TestChoiceWithoutReplacement:
    def test_distinct(self):
        rng = np.random.default_rng(0)
        out = choice_without_replacement(rng, list(range(10)), 10)
        assert sorted(out.tolist()) == list(range(10))

    def test_oversample_rejected(self):
        with pytest.raises(ValueError):
            choice_without_replacement(np.random.default_rng(0), [1, 2], 3)
