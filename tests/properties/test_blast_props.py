"""Property-based tests for the BLAST engine's vectorized kernels.

Each vectorized hot path is checked against an independent scalar reference
implementation on random inputs — the guide's "make it work reliably before
optimizing" applied in reverse: prove the optimized code equals the simple
one.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.blast.lookup import QueryIndex, kmer_codes
from repro.blast.smith_waterman import smith_waterman_score
from repro.blast.ungapped import _extend_direction
from repro.blast.gapped import extend_gapped
from repro.blast.hsp import score_path
from repro.sequence.alphabet import decode, encode

dna = st.text(alphabet="ACGT", min_size=0, max_size=120)
short_dna = st.text(alphabet="ACGT", min_size=1, max_size=40)
seeds = st.integers(min_value=0, max_value=2**31)


class TestLookupProperties:
    @given(dna, dna, st.integers(min_value=2, max_value=8))
    @settings(max_examples=60)
    def test_lookup_equals_brute_force(self, q, s, k):
        idx = QueryIndex(encode(q), k)
        qp, sp = idx.lookup(encode(s))
        got = sorted(zip(qp.tolist(), sp.tolist()))
        expected = [
            (i, j)
            for i in range(len(q) - k + 1)
            for j in range(len(s) - k + 1)
            if q[i : i + k] == s[j : j + k]
        ]
        assert got == sorted(expected)

    @given(dna, st.integers(min_value=2, max_value=8))
    def test_packing_injective_on_windows(self, s, k):
        """Equal packed codes <=> equal windows."""
        packed, valid = kmer_codes(encode(s), k)
        windows = [s[i : i + k] for i in range(max(0, len(s) - k + 1))]
        for i in range(len(windows)):
            for j in range(i + 1, len(windows)):
                if valid[i] and valid[j]:
                    assert (packed[i] == packed[j]) == (windows[i] == windows[j])


def scalar_extend(q, s, q0, s0, direction, reward, penalty, x_drop):
    best, best_len, cum, t = 0, 0, 0, 0
    while True:
        qi, si = q0 + direction * t, s0 + direction * t
        if not (0 <= qi < len(q) and 0 <= si < len(s)):
            break
        cum += reward if q[qi] == s[si] else penalty
        if cum > best:
            best, best_len = cum, t + 1
        if best - cum > x_drop:
            break
        t += 1
    return best, best_len


class TestUngappedProperties:
    @given(short_dna, short_dna, seeds, st.sampled_from([1, -1]))
    @settings(max_examples=80)
    def test_batch_extension_equals_scalar(self, q, s, seed, direction):
        rng = np.random.default_rng(seed)
        qc, sc = encode(q), encode(s)
        n_anchors = 8
        aq = rng.integers(0, len(q), size=n_anchors)
        as_ = rng.integers(0, len(s), size=n_anchors)
        scores, lengths = _extend_direction(qc, sc, aq, as_, direction, 1, -3, 10)
        for i in range(n_anchors):
            ref = scalar_extend(qc, sc, int(aq[i]), int(as_[i]), direction, 1, -3, 10)
            assert (int(scores[i]), int(lengths[i])) == ref


class TestGappedProperties:
    @given(
        short_dna,
        short_dna,
        seeds,
        st.booleans(),
        st.sampled_from(["wavefront", "rowloop"]),
    )
    @settings(max_examples=60)
    def test_traceback_score_consistency(self, q, s, seed, absolute_drop, kernel):
        """A returned path always rescores to GappedExtension.score.

        This is the guardrail that catches any drift in the batched
        traceback: it holds for both drop rules, across random anchors, and
        for both DP kernels.
        """
        rng = np.random.default_rng(seed)
        qc, sc = encode(q), encode(s)
        aq = int(rng.integers(0, len(q) + 1))
        as_ = int(rng.integers(0, len(s) + 1))
        ext = extend_gapped(
            qc, sc, aq, as_, 1, -3, 5, 2, x_drop=12,
            absolute_drop=absolute_drop, kernel=kernel,
        )
        assert ext.path is not None
        assert score_path(ext.path, qc, sc, ext.q_start, ext.s_start, 1, -3, 5, 2) == ext.score

    @given(short_dna, short_dna)
    @settings(max_examples=40)
    def test_extension_bounded_by_smith_waterman(self, q, s):
        """A gapped extension is a constrained local alignment: SW ≥ it."""
        qc, sc = encode(q), encode(s)
        ext = extend_gapped(qc, sc, 0, 0, 1, -3, 5, 2, x_drop=10_000, keep_traceback=False)
        assert ext.score <= smith_waterman_score(qc, sc, 1, -3, 5, 2)


def naive_sw_scalar(q, s, reward, penalty, gap_open, gap_extend):
    m, n = len(q), len(s)
    neg = -(10**9)
    H = [[0] * (n + 1) for _ in range(m + 1)]
    E = [[neg] * (n + 1) for _ in range(m + 1)]
    F = [[neg] * (n + 1) for _ in range(m + 1)]
    best = 0
    for i in range(1, m + 1):
        for j in range(1, n + 1):
            sub = reward if q[i - 1] == s[j - 1] else penalty
            E[i][j] = max(E[i][j - 1] - gap_extend, H[i][j - 1] - gap_open - gap_extend)
            F[i][j] = max(F[i - 1][j] - gap_extend, H[i - 1][j] - gap_open - gap_extend)
            H[i][j] = max(0, H[i - 1][j - 1] + sub, E[i][j], F[i][j])
            best = max(best, H[i][j])
    return best


class TestSmithWatermanProperties:
    @given(short_dna, short_dna)
    @settings(max_examples=40)
    def test_vectorized_equals_scalar(self, q, s):
        qc, sc = encode(q), encode(s)
        assert smith_waterman_score(qc, sc, 1, -3, 5, 2) == naive_sw_scalar(
            qc, sc, 1, -3, 5, 2
        )

    @given(short_dna)
    def test_self_alignment_is_length(self, q):
        qc = encode(q)
        assert smith_waterman_score(qc, qc, 1, -3, 5, 2) == len(q)

    @given(short_dna, short_dna)
    @settings(max_examples=30)
    def test_symmetry(self, q, s):
        qc, sc = encode(q), encode(s)
        assert smith_waterman_score(qc, sc, 1, -3, 5, 2) == smith_waterman_score(
            sc, qc, 1, -3, 5, 2
        )
