"""Property-based tests for the cluster simulator and metrics."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.metrics import coefficient_of_variation, speedup_curve
from repro.cluster.simulator import simulate_phase, simulate_phases
from repro.cluster.tasks import SimTask
from repro.cluster.topology import ClusterSpec

durations = st.lists(
    st.floats(min_value=0.0, max_value=100.0, allow_nan=False), min_size=1, max_size=60
)
clusters = st.builds(
    ClusterSpec,
    nodes=st.integers(min_value=1, max_value=8),
    cores_per_node=st.integers(min_value=1, max_value=8),
)


def mk_tasks(ds):
    return [SimTask(task_id=f"t{i}", duration=d) for i, d in enumerate(ds)]


class TestSchedulerBounds:
    @given(durations, clusters, st.sampled_from(["fifo", "lpt", "spt", "random"]))
    @settings(max_examples=120)
    def test_graham_bounds(self, ds, cluster, policy):
        """List scheduling: LB = max(total/m, longest) ≤ makespan ≤
        total/m + longest (Graham's bound for any list order)."""
        sched = simulate_phase(mk_tasks(ds), cluster, policy=policy)
        m = cluster.total_slots
        total = sum(ds)
        longest = max(ds)
        lb = max(total / m, longest)
        ub = total / m + longest
        assert sched.end_time >= lb - 1e-9
        assert sched.end_time <= ub + 1e-9

    @given(durations, clusters)
    @settings(max_examples=60)
    def test_work_conservation(self, ds, cluster):
        sched = simulate_phase(mk_tasks(ds), cluster)
        assert sched.per_slot_busy().sum() == np.sum(ds) or abs(
            sched.per_slot_busy().sum() - np.sum(ds)
        ) < 1e-6

    @given(durations, clusters)
    @settings(max_examples=60)
    def test_no_slot_overlap(self, ds, cluster):
        """Tasks on the same slot never overlap in time."""
        sched = simulate_phase(mk_tasks(ds), cluster)
        by_slot = {}
        for s in sched.scheduled:
            by_slot.setdefault(s.slot, []).append((s.start, s.end))
        for intervals in by_slot.values():
            intervals.sort()
            for (s1, e1), (s2, e2) in zip(intervals, intervals[1:]):
                assert s2 >= e1 - 1e-9

    @given(durations)
    @settings(max_examples=40)
    def test_doubling_slots_never_hurts(self, ds):
        a = simulate_phase(mk_tasks(ds), ClusterSpec(nodes=1, cores_per_node=2))
        b = simulate_phase(mk_tasks(ds), ClusterSpec(nodes=1, cores_per_node=4))
        # FIFO list scheduling is not strictly monotone in machine count in
        # theory, but with identical order and greedy earliest-slot placement
        # adding slots can only start tasks earlier or at the same time.
        assert b.end_time <= a.end_time + max(ds) + 1e-9

    @given(durations, clusters)
    @settings(max_examples=40)
    def test_phases_are_ordered(self, ds, cluster):
        half = len(ds) // 2 or 1
        sched = simulate_phases([mk_tasks(ds[:half]), mk_tasks(ds[half:])], cluster)
        assert sched.phase_ends == sorted(sched.phase_ends)
        assert sched.makespan >= sched.phase_ends[-1] - 1e-9


class TestMetricProperties:
    @given(st.lists(st.floats(min_value=0.01, max_value=1e4), min_size=1, max_size=50))
    def test_cv_nonnegative_and_scale_invariant(self, ds):
        cv = coefficient_of_variation(ds)
        assert cv >= 0
        scaled = coefficient_of_variation([d * 7.5 for d in ds])
        assert abs(cv - scaled) < 1e-9

    @given(
        st.lists(st.floats(min_value=0.1, max_value=1e4), min_size=1, max_size=10)
    )
    def test_speedup_baseline_one(self, makespans):
        cores = [64 * (i + 1) for i in range(len(makespans))]
        rows = speedup_curve(cores, makespans)
        assert rows[0][1] == 1.0
