"""Property-based tests for Orion's fragmentation, sorting and merging."""

import numpy as np
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.blast.hsp import Alignment, OP_DIAG
from repro.core.fragmenter import fragment_query
from repro.core.merge import trim_path_to_peaks, try_merge_pair
from repro.core.sortmr import parallel_sort_alignments
from repro.sequence.alphabet import random_bases
from repro.sequence.records import SequenceRecord

P = dict(reward=1, penalty=-3, gap_open=5, gap_extend=2)


@st.composite
def fragmentation_case(draw):
    n = draw(st.integers(min_value=1, max_value=5000))
    frag = draw(st.integers(min_value=2, max_value=2000))
    overlap = draw(st.integers(min_value=0, max_value=frag - 1))
    return n, frag, overlap


class TestFragmentationInvariants:
    @given(fragmentation_case(), st.integers(0, 2**31))
    @settings(max_examples=100)
    def test_coverage_overlap_and_order(self, case, seed):
        n, frag_len, overlap = case
        rng = np.random.default_rng(seed)
        query = SequenceRecord(seq_id="q", codes=random_bases(rng, n))
        frags = fragment_query(query, frag_len, overlap)

        # coverage: exact, in order, no gaps
        assert frags[0].offset == 0
        assert frags[-1].end == n
        for a, b in zip(frags, frags[1:]):
            assert b.offset > a.offset
            assert b.offset <= a.end  # no gap
            overlap_actual = a.end - b.offset
            assert overlap_actual >= overlap
            if not b.is_last:
                assert overlap_actual == overlap

        # flags: exactly one first, one last
        assert sum(f.is_first for f in frags) == 1
        assert sum(f.is_last for f in frags) == 1
        # equal size except possibly the last
        if len(frags) > 1:
            assert all(f.length == frag_len for f in frags[:-1])

        # content equals the query slice
        for f in frags:
            assert np.array_equal(f.record.codes, query.codes[f.offset : f.end])

    @given(fragmentation_case())
    def test_short_query_unfragmented(self, case):
        n, frag_len, overlap = case
        assume(n <= frag_len)
        rng = np.random.default_rng(0)
        query = SequenceRecord(seq_id="q", codes=random_bases(rng, n))
        frags = fragment_query(query, frag_len, overlap)
        assert len(frags) == 1


def _aln(evalue, score, subject):
    return Alignment(
        query_id="q", subject_id=subject, q_start=0, q_end=5, s_start=0, s_end=5,
        score=score, evalue=evalue, bits=float(score),
    )


class TestSampleSortProperties:
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=1e-30, max_value=10.0, allow_nan=False),
                st.integers(min_value=1, max_value=1000),
                st.sampled_from(["s1", "s2", "s3"]),
            ),
            max_size=80,
        ),
        st.integers(min_value=1, max_value=9),
    )
    @settings(max_examples=60)
    def test_equals_global_sort(self, rows, num_tasks):
        alns = [_aln(e, sc, sub) for e, sc, sub in rows]
        out, _ = parallel_sort_alignments(alns, num_tasks=num_tasks)
        assert [a.sort_key() for a in out] == sorted(a.sort_key() for a in alns)
        assert len(out) == len(alns)


class TestMergeProperties:
    @given(
        st.integers(min_value=5, max_value=60),
        st.integers(min_value=5, max_value=60),
        st.integers(min_value=1, max_value=50),
        st.integers(0, 2**31),
    )
    @settings(max_examples=60)
    def test_splice_merge_consumption_consistent(self, len_a, len_b, gap, seed):
        """Whenever a merge succeeds, the merged path consumes exactly the
        merged intervals."""
        rng = np.random.default_rng(seed)
        start_b = gap  # b starts 'gap' after a's start (may overlap a)
        total = max(len_a, start_b + len_b)
        seq = random_bases(rng, total + 10)
        a = Alignment(
            query_id="q", subject_id="s", q_start=0, q_end=len_a, s_start=0,
            s_end=len_a, score=len_a, evalue=1e-9, bits=1.0,
            path=np.full(len_a, OP_DIAG, dtype=np.uint8),
        )
        b = Alignment(
            query_id="q", subject_id="s", q_start=start_b, q_end=start_b + len_b,
            s_start=start_b, s_end=start_b + len_b, score=len_b, evalue=1e-9, bits=1.0,
            path=np.full(len_b, OP_DIAG, dtype=np.uint8),
        )
        merged = try_merge_pair(a, b, q_codes=seq, s_codes=seq, **P)
        if merged is not None:
            from repro.blast.hsp import OP_QGAP, OP_SGAP

            q_span = int(np.count_nonzero(merged.path != OP_QGAP))
            s_span = int(np.count_nonzero(merged.path != OP_SGAP))
            assert q_span == merged.q_end - merged.q_start
            assert s_span == merged.s_end - merged.s_start
            assert merged.q_start == min(a.q_start, b.q_start)
            assert merged.q_end == max(a.q_end, b.q_end)

    @given(st.integers(min_value=1, max_value=80), st.integers(0, 2**31))
    @settings(max_examples=60)
    def test_trim_idempotent(self, n, seed):
        rng = np.random.default_rng(seed)
        q = random_bases(rng, n)
        s = random_bases(rng, n)
        a = Alignment(
            query_id="q", subject_id="s", q_start=0, q_end=n, s_start=0, s_end=n,
            score=0, evalue=1e-9, bits=1.0, path=np.full(n, OP_DIAG, dtype=np.uint8),
        )
        once = trim_path_to_peaks(a, q, s, **P)
        twice = trim_path_to_peaks(once, q, s, **P)
        assert (once.q_start, once.q_end, once.s_start, once.s_end) == (
            twice.q_start, twice.q_end, twice.s_start, twice.s_end,
        )
