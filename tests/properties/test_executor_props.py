"""Executor-equivalence properties: serial == threaded == process.

The paper's 100%-accuracy claim must survive the executor swap — parallel
backends change *when* work runs, never *what* it produces. These tests push
all three executors end to end through ``OrionSearch.run`` (object mode,
Hadoop-streaming mode, both strands) and ``parallel_sort_alignments`` and
require field-identical output, down to the alignment paths.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.blast.hsp import Alignment
from repro.core.orion import OrionSearch
from repro.core.sortmr import parallel_sort_alignments
from repro.sequence.generator import (
    HomologySpec,
    make_database,
    make_query_with_homologies,
)


def canonical(alignments):
    """Every field of every alignment, with the path as raw bytes — equality
    here is the "byte-identical" bar the executor backends must clear."""
    out = []
    for a in alignments:
        fields = dict(vars(a))
        path = fields.pop("path", None)
        fields["path"] = None if path is None else path.tobytes()
        out.append(tuple(sorted(fields.items())))
    return out


# --------------------------------------------------------------------------- #
# OrionSearch end to end
# --------------------------------------------------------------------------- #


@pytest.fixture(scope="module")
def tiny_db():
    return make_database(seed=71, num_sequences=8, mean_length=3000)


@pytest.fixture(scope="module")
def tiny_query(tiny_db):
    query, _ = make_query_with_homologies(
        seed=72, length=20_000, database=tiny_db,
        homologies=[HomologySpec(length=600), HomologySpec(length=400)],
    )
    return query


def run_orion(db, query, executor, use_streaming=False, strands="plus", shared_db=None):
    search = OrionSearch(
        database=db,
        num_shards=4,
        fragment_length=6000,
        strands=strands,
        use_streaming=use_streaming,
        executor=executor,
        num_workers=2,
        shared_db=shared_db,
    )
    try:
        return search.run(query)
    finally:
        search.close()


@pytest.mark.parametrize("use_streaming", [False, True])
@pytest.mark.parametrize("strands", ["plus", "both"])
class TestOrionExecutorEquivalence:
    def test_threads_equal_serial(self, tiny_db, tiny_query, use_streaming, strands):
        serial = run_orion(tiny_db, tiny_query, "serial", use_streaming, strands)
        threaded = run_orion(tiny_db, tiny_query, "threads", use_streaming, strands)
        assert canonical(threaded.alignments) == canonical(serial.alignments)
        assert len(serial.alignments) > 0

    def test_processes_equal_serial(self, tiny_db, tiny_query, use_streaming, strands):
        serial = run_orion(tiny_db, tiny_query, "serial", use_streaming, strands)
        proc = run_orion(tiny_db, tiny_query, "processes", use_streaming, strands)
        assert canonical(proc.alignments) == canonical(serial.alignments)
        assert proc.executor_kind == "processes"
        # Aggregation stats travel through the reduce output stream, so they
        # must survive the process boundary too.
        assert proc.merged_pairs == serial.merged_pairs
        assert proc.dropped_partials == serial.dropped_partials

    def test_processes_shm_equal_serial(self, tiny_db, tiny_query, use_streaming, strands):
        """The zero-copy shared-database plane must be invisible in the
        output: serial == processes+shm, field-identical."""
        pytest.importorskip("multiprocessing.shared_memory")
        serial = run_orion(tiny_db, tiny_query, "serial", use_streaming, strands)
        shm = run_orion(
            tiny_db, tiny_query, "processes", use_streaming, strands, shared_db=True
        )
        assert canonical(shm.alignments) == canonical(serial.alignments)
        assert shm.executor_kind == "processes"
        assert shm.merged_pairs == serial.merged_pairs

    def test_processes_pickled_db_equal_serial(
        self, tiny_db, tiny_query, use_streaming, strands
    ):
        """--no-shared-db path: the pickled-database fallback stays exact."""
        serial = run_orion(tiny_db, tiny_query, "serial", use_streaming, strands)
        pickled = run_orion(
            tiny_db, tiny_query, "processes", use_streaming, strands, shared_db=False
        )
        assert canonical(pickled.alignments) == canonical(serial.alignments)


def test_serial_records_simulator_safe_processes_not(tiny_db, tiny_query):
    serial = run_orion(tiny_db, tiny_query, "serial")
    assert serial.executor_kind == "serial"
    assert serial.mapreduce_wall_seconds > 0
    proc = run_orion(tiny_db, tiny_query, "processes")
    assert proc.executor_kind == "processes"


# --------------------------------------------------------------------------- #
# parallel_sort_alignments
# --------------------------------------------------------------------------- #


def _aln(evalue, score, subject):
    return Alignment(
        query_id="q", subject_id=subject, q_start=0, q_end=10, s_start=0, s_end=10,
        score=score, evalue=evalue, bits=float(score),
    )


@st.composite
def alignment_lists(draw):
    n = draw(st.integers(min_value=0, max_value=60))
    # Small value pools force heavy duplicate/skew cases.
    evalues = draw(
        st.lists(
            st.sampled_from([1e-20, 1e-9, 1e-5, 0.1, 1.0]), min_size=n, max_size=n
        )
    )
    scores = draw(
        st.lists(st.integers(min_value=10, max_value=14), min_size=n, max_size=n)
    )
    return [
        _aln(e, s, f"s{i % 3}") for i, (e, s) in enumerate(zip(evalues, scores))
    ]


@given(alignment_lists(), st.integers(min_value=1, max_value=8))
@settings(max_examples=60, deadline=None)
def test_sort_threads_equal_serial(alns, num_tasks):
    serial, _ = parallel_sort_alignments(alns, num_tasks=num_tasks)
    threaded, _ = parallel_sort_alignments(alns, num_tasks=num_tasks, executor="threads")
    assert canonical(threaded) == canonical(serial)
    assert [a.sort_key() for a in serial] == sorted(a.sort_key() for a in alns)


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_sort_processes_equal_serial(seed):
    rng = np.random.default_rng(seed)
    alns = [
        _aln(float(rng.uniform(1e-20, 2.0)), int(rng.integers(10, 200)), f"s{i % 4}")
        for i in range(80)
    ]
    serial, _ = parallel_sort_alignments(alns, num_tasks=5)
    proc, _ = parallel_sort_alignments(alns, num_tasks=5, executor="processes")
    assert canonical(proc) == canonical(serial)
