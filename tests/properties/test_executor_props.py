"""Executor-equivalence properties: serial == threaded == process.

The paper's 100%-accuracy claim must survive the executor swap — parallel
backends change *when* work runs, never *what* it produces. These tests push
all three executors end to end through ``OrionSearch.run`` (object mode,
Hadoop-streaming mode, both strands) and ``parallel_sort_alignments`` and
require field-identical output, down to the alignment paths.
"""

import os

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.blast.hsp import Alignment
from repro.core.orion import OrionSearch
from repro.core.sortmr import parallel_sort_alignments
from repro.mapreduce import shm as shm_mod
from repro.mapreduce.job import MapReduceJob
from repro.mapreduce.runtime import ProcessExecutor, SerialExecutor, WorkerPool
from repro.mapreduce.types import InputSplit
from repro.sequence.generator import (
    HomologySpec,
    make_database,
    make_query_with_homologies,
)


def canonical(alignments):
    """Every field of every alignment, with the path as raw bytes — equality
    here is the "byte-identical" bar the executor backends must clear."""
    out = []
    for a in alignments:
        fields = dict(vars(a))
        path = fields.pop("path", None)
        fields["path"] = None if path is None else path.tobytes()
        out.append(tuple(sorted(fields.items())))
    return out


# --------------------------------------------------------------------------- #
# OrionSearch end to end
# --------------------------------------------------------------------------- #


@pytest.fixture(scope="module")
def tiny_db():
    return make_database(seed=71, num_sequences=8, mean_length=3000)


@pytest.fixture(scope="module")
def tiny_query(tiny_db):
    query, _ = make_query_with_homologies(
        seed=72, length=20_000, database=tiny_db,
        homologies=[HomologySpec(length=600), HomologySpec(length=400)],
    )
    return query


def run_orion(
    db,
    query,
    executor,
    use_streaming=False,
    strands="plus",
    shared_db=None,
    shuffle="barrier",
    prune_threshold=None,
):
    search = OrionSearch(
        database=db,
        num_shards=4,
        fragment_length=6000,
        strands=strands,
        use_streaming=use_streaming,
        executor=executor,
        num_workers=2,
        shuffle=shuffle,
        shared_db=shared_db,
        prune_threshold=prune_threshold,
    )
    try:
        return search.run(query)
    finally:
        search.close()


@pytest.mark.parametrize("use_streaming", [False, True])
@pytest.mark.parametrize("strands", ["plus", "both"])
class TestOrionExecutorEquivalence:
    def test_threads_equal_serial(self, tiny_db, tiny_query, use_streaming, strands):
        serial = run_orion(tiny_db, tiny_query, "serial", use_streaming, strands)
        threaded = run_orion(tiny_db, tiny_query, "threads", use_streaming, strands)
        assert canonical(threaded.alignments) == canonical(serial.alignments)
        assert len(serial.alignments) > 0

    def test_processes_equal_serial(self, tiny_db, tiny_query, use_streaming, strands):
        serial = run_orion(tiny_db, tiny_query, "serial", use_streaming, strands)
        proc = run_orion(tiny_db, tiny_query, "processes", use_streaming, strands)
        assert canonical(proc.alignments) == canonical(serial.alignments)
        assert proc.executor_kind == "processes"
        # Aggregation stats travel through the reduce output stream, so they
        # must survive the process boundary too.
        assert proc.merged_pairs == serial.merged_pairs
        assert proc.dropped_partials == serial.dropped_partials

    def test_processes_shm_equal_serial(self, tiny_db, tiny_query, use_streaming, strands):
        """The zero-copy shared-database plane must be invisible in the
        output: serial == processes+shm, field-identical."""
        pytest.importorskip("multiprocessing.shared_memory")
        serial = run_orion(tiny_db, tiny_query, "serial", use_streaming, strands)
        shm = run_orion(
            tiny_db, tiny_query, "processes", use_streaming, strands, shared_db=True
        )
        assert canonical(shm.alignments) == canonical(serial.alignments)
        assert shm.executor_kind == "processes"
        assert shm.merged_pairs == serial.merged_pairs

    def test_processes_pickled_db_equal_serial(
        self, tiny_db, tiny_query, use_streaming, strands
    ):
        """--no-shared-db path: the pickled-database fallback stays exact."""
        serial = run_orion(tiny_db, tiny_query, "serial", use_streaming, strands)
        pickled = run_orion(
            tiny_db, tiny_query, "processes", use_streaming, strands, shared_db=False
        )
        assert canonical(pickled.alignments) == canonical(serial.alignments)


@pytest.mark.parametrize("strands", ["plus", "both"])
class TestPruningEquivalence:
    """Threshold-0 pruning probes every (fragment × shard) pair but keeps
    them all — so it must be byte-identical to never probing, on every
    executor, both strands, shared plane on and off. This is the safety
    rail under ``prune_threshold``: the probe machinery itself cannot
    perturb results; only the keep/skip decision can (gated separately by
    ``benchmarks/bench_pruning.py``)."""

    def test_serial_threshold_zero_identical(self, tiny_db, tiny_query, strands):
        base = run_orion(tiny_db, tiny_query, "serial", strands=strands)
        zero = run_orion(
            tiny_db, tiny_query, "serial", strands=strands, prune_threshold=0.0
        )
        assert canonical(zero.alignments) == canonical(base.alignments)
        assert zero.num_work_units == base.num_work_units
        assert zero.pruned_map_tasks == 0
        assert zero.shards_pruned == 0
        assert len(base.alignments) > 0

    def test_threads_threshold_zero_identical(self, tiny_db, tiny_query, strands):
        base = run_orion(tiny_db, tiny_query, "serial", strands=strands)
        zero = run_orion(
            tiny_db, tiny_query, "threads", strands=strands, prune_threshold=0.0
        )
        assert canonical(zero.alignments) == canonical(base.alignments)

    def test_processes_shm_threshold_zero_identical(
        self, tiny_db, tiny_query, strands
    ):
        """Shared plane on: the sketch index merges the plane's prebuilt
        per-sequence sketches — results still identical."""
        pytest.importorskip("multiprocessing.shared_memory")
        base = run_orion(tiny_db, tiny_query, "serial", strands=strands)
        zero = run_orion(
            tiny_db,
            tiny_query,
            "processes",
            strands=strands,
            shared_db=True,
            prune_threshold=0.0,
        )
        assert canonical(zero.alignments) == canonical(base.alignments)
        assert zero.pruned_map_tasks == 0

    def test_processes_pickled_threshold_zero_identical(
        self, tiny_db, tiny_query, strands
    ):
        """Shared plane off: the in-process sketch path — still identical."""
        base = run_orion(tiny_db, tiny_query, "serial", strands=strands)
        zero = run_orion(
            tiny_db,
            tiny_query,
            "processes",
            strands=strands,
            shared_db=False,
            prune_threshold=0.0,
        )
        assert canonical(zero.alignments) == canonical(base.alignments)


def test_serial_records_simulator_safe_processes_not(tiny_db, tiny_query):
    serial = run_orion(tiny_db, tiny_query, "serial")
    assert serial.executor_kind == "serial"
    assert serial.mapreduce_wall_seconds > 0
    proc = run_orion(tiny_db, tiny_query, "processes")
    assert proc.executor_kind == "processes"


# --------------------------------------------------------------------------- #
# streaming shuffle == barrier shuffle
# --------------------------------------------------------------------------- #


def _orionspill_segments():
    """Live streaming-shuffle spill segments (Linux probe; empty elsewhere)."""
    try:
        return {n for n in os.listdir("/dev/shm") if n.startswith("orionspill_")}
    except FileNotFoundError:  # pragma: no cover - non-Linux
        return set()


# Module-level word-count job pieces: picklable under fork and spawn alike.
_WORDS = ("orion", "blast", "shuffle", "spill", "reduce", "merge", "seed", "hit")


def _wc_mapper(split):
    for line in split.payload:
        for word in line.split():
            yield word, 1


def _count_reducer(key, values):
    yield key, sum(values)


def _sum_combiner(key, values):
    yield sum(values)


class _CrashInWorkerReducer:
    """Kills every pool worker mid-reduce; harmless in the parent, so the
    serial fallback completes (mirrors test_shm's crashing mapper)."""

    def __init__(self, parent_pid):
        self.parent_pid = parent_pid

    def __call__(self, key, values):
        if os.getpid() != self.parent_pid:
            os._exit(13)
        yield key, sum(values)


def _word_splits(n=6, lines=8):
    return [
        InputSplit(
            index=i,
            payload=[
                " ".join(_WORDS[(i + j + k) % len(_WORDS)] for k in range(5))
                for j in range(lines)
            ],
        )
        for i in range(n)
    ]


def _wc_job(with_combiner=False, reducer=_count_reducer):
    return MapReduceJob(
        mapper=_wc_mapper,
        reducer=reducer,
        num_reducers=3,
        combiner=_sum_combiner if with_combiner else None,
        name="wc",
    )


class TestStreamingShuffleEquivalence:
    """The push-based shuffle changes *when* reduce tasks start, never what
    they produce — and must never leave a spill segment behind."""

    @pytest.mark.parametrize("start_method", ["fork", "spawn"])
    @pytest.mark.parametrize("with_combiner", [False, True])
    def test_streaming_equals_barrier(self, start_method, with_combiner):
        before = _orionspill_segments()
        serial = SerialExecutor().run(_wc_job(with_combiner), _word_splits())
        streaming = ProcessExecutor(
            max_workers=2, start_method=start_method, shuffle="streaming"
        ).run(_wc_job(with_combiner), _word_splits())
        barrier = ProcessExecutor(
            max_workers=2, start_method=start_method, shuffle="barrier"
        ).run(_wc_job(with_combiner), _word_splits())
        assert streaming.outputs == barrier.outputs == serial.outputs
        assert streaming.shuffle_keys == serial.shuffle_keys
        assert all(r.executor == "processes" for r in streaming.records)
        # Every spilled byte must be accounted for on the reduce side.
        out_bytes = sum(r.shuffle_bytes_out for r in streaming.map_records())
        in_bytes = sum(r.shuffle_bytes_in for r in streaming.reduce_records())
        assert out_bytes == in_bytes > 0
        assert _orionspill_segments() - before == set()

    @pytest.mark.parametrize("start_method", ["fork", "spawn"])
    def test_worker_pool_streaming_repeat_runs(self, start_method):
        before = _orionspill_segments()
        serial = SerialExecutor().run(_wc_job(True), _word_splits())
        with WorkerPool(
            max_workers=2, start_method=start_method, shuffle="streaming"
        ) as pool:
            r1 = pool.run(_wc_job(True), _word_splits())
            r2 = pool.run(_wc_job(True), _word_splits())
        assert r1.outputs == r2.outputs == serial.outputs
        assert all(r.executor == "processes" for r in r1.records)
        assert _orionspill_segments() - before == set()

    @pytest.mark.parametrize("start_method", ["fork", "spawn"])
    def test_reduce_crash_sweeps_spill_segments(self, start_method):
        """Workers die *after* spilling map output; the driver must still
        sweep every spill segment and recover via the serial fallback."""
        before = _orionspill_segments()
        job = _wc_job(reducer=_CrashInWorkerReducer(os.getpid()))
        ex = ProcessExecutor(
            max_workers=2, start_method=start_method, shuffle="streaming"
        )
        with pytest.warns(RuntimeWarning, match="falling back to serial"):
            result = ex.run(job, _word_splits())
        serial = SerialExecutor().run(_wc_job(), _word_splits())
        assert result.outputs == serial.outputs
        assert all(r.executor == "serial" for r in result.records)
        assert _orionspill_segments() - before == set()

    def test_streaming_without_shm_matches(self, monkeypatch):
        """Inline-fallback locators (no shared memory at all) stay exact."""
        monkeypatch.setattr(shm_mod, "HAVE_SHARED_MEMORY", False)
        serial = SerialExecutor().run(_wc_job(True), _word_splits())
        streaming = ProcessExecutor(max_workers=2, shuffle="streaming").run(
            _wc_job(True), _word_splits()
        )
        assert streaming.outputs == serial.outputs


def test_orion_streaming_shuffle_equals_serial(tiny_db, tiny_query):
    """End to end: OrionSearch over the streaming shuffle is field-identical
    to the serial run, and sweeps its spill segments."""
    before = _orionspill_segments()
    serial = run_orion(tiny_db, tiny_query, "serial")
    streaming = run_orion(tiny_db, tiny_query, "processes", shuffle="streaming")
    assert canonical(streaming.alignments) == canonical(serial.alignments)
    assert streaming.executor_kind == "processes"
    assert streaming.merged_pairs == serial.merged_pairs
    assert streaming.dropped_partials == serial.dropped_partials
    assert _orionspill_segments() - before == set()


def test_orion_service_concurrent_equals_serial(tiny_db, tiny_query):
    """The always-on service path: concurrent admissions interleaving on
    one shared worker pool stay field-identical to the serial run, query
    by query, and the drained shutdown sweeps every spill segment."""
    import asyncio

    from repro.service import OrionService, ServiceConfig

    before = _orionspill_segments()
    serial = run_orion(tiny_db, tiny_query, "serial")
    search = OrionSearch(
        database=tiny_db, num_shards=4, fragment_length=6000,
        executor="processes", num_workers=2,
    )
    service = OrionService(search, ServiceConfig(max_inflight=3, queue_depth=8))

    async def main():
        async with service:
            return await asyncio.gather(
                *(service.submit(tiny_query) for _ in range(3))
            )

    results = asyncio.run(main())
    assert len(results) == 3
    for result in results:
        assert canonical(result.alignments) == canonical(serial.alignments)
        assert result.executor_kind == "processes"
    assert service.stats.completed == 3
    assert _orionspill_segments() - before == set()


# --------------------------------------------------------------------------- #
# parallel_sort_alignments
# --------------------------------------------------------------------------- #


def _aln(evalue, score, subject):
    return Alignment(
        query_id="q", subject_id=subject, q_start=0, q_end=10, s_start=0, s_end=10,
        score=score, evalue=evalue, bits=float(score),
    )


@st.composite
def alignment_lists(draw):
    n = draw(st.integers(min_value=0, max_value=60))
    # Small value pools force heavy duplicate/skew cases.
    evalues = draw(
        st.lists(
            st.sampled_from([1e-20, 1e-9, 1e-5, 0.1, 1.0]), min_size=n, max_size=n
        )
    )
    scores = draw(
        st.lists(st.integers(min_value=10, max_value=14), min_size=n, max_size=n)
    )
    return [
        _aln(e, s, f"s{i % 3}") for i, (e, s) in enumerate(zip(evalues, scores))
    ]


@given(alignment_lists(), st.integers(min_value=1, max_value=8))
@settings(max_examples=60, deadline=None)
def test_sort_threads_equal_serial(alns, num_tasks):
    serial, _ = parallel_sort_alignments(alns, num_tasks=num_tasks)
    threaded, _ = parallel_sort_alignments(alns, num_tasks=num_tasks, executor="threads")
    assert canonical(threaded) == canonical(serial)
    assert [a.sort_key() for a in serial] == sorted(a.sort_key() for a in alns)


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_sort_processes_equal_serial(seed):
    rng = np.random.default_rng(seed)
    alns = [
        _aln(float(rng.uniform(1e-20, 2.0)), int(rng.integers(10, 200)), f"s{i % 4}")
        for i in range(80)
    ]
    serial, _ = parallel_sort_alignments(alns, num_tasks=5)
    proc, _ = parallel_sort_alignments(alns, num_tasks=5, executor="processes")
    assert canonical(proc) == canonical(serial)
