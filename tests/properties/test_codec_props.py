"""Property-based tests for the text codecs (CIGAR, tabular, streaming)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.blast.formatter import format_tabular_row, parse_tabular
from repro.blast.hsp import (
    OP_DIAG,
    OP_QGAP,
    OP_SGAP,
    Alignment,
    cigar_to_path,
    path_to_cigar,
)
from repro.core.results import FragmentAlignment
from repro.core.streaming import (
    decode_fragment_alignment,
    encode_fragment_alignment,
    shuffle_key_to_text,
    text_to_shuffle_key,
)

paths = st.lists(
    st.sampled_from([OP_DIAG, OP_QGAP, OP_SGAP]), min_size=0, max_size=200
).map(lambda ops: np.array(ops, dtype=np.uint8))


class TestCigarProperties:
    @given(paths)
    def test_round_trip(self, path):
        assert np.array_equal(cigar_to_path(path_to_cigar(path)), path)

    @given(paths)
    def test_cigar_counts_sum_to_length(self, path):
        cigar = path_to_cigar(path)
        total = sum(
            int(n) for n in __import__("re").findall(r"(\d+)[MID]", cigar)
        )
        assert total == path.size

    @given(paths)
    def test_runs_alternate(self, path):
        """No two consecutive CIGAR runs share an op letter."""
        import re

        letters = re.findall(r"\d+([MID])", path_to_cigar(path))
        assert all(a != b for a, b in zip(letters, letters[1:]))


@st.composite
def alignments(draw, with_path=True):
    q_start = draw(st.integers(0, 10_000))
    s_start = draw(st.integers(0, 10_000))
    if with_path:
        path = draw(paths.filter(lambda p: p.size > 0))
        q_span = int(np.count_nonzero(path != OP_QGAP))
        s_span = int(np.count_nonzero(path != OP_SGAP))
    else:
        path = None
        q_span = draw(st.integers(1, 100))
        s_span = q_span
    return Alignment(
        query_id=draw(st.text(alphabet="abcz.0-9", min_size=1, max_size=12)),
        subject_id=draw(st.text(alphabet="abcz.0-9", min_size=1, max_size=12)),
        q_start=q_start,
        q_end=q_start + q_span,
        s_start=s_start,
        s_end=s_start + s_span,
        score=draw(st.integers(0, 10_000)),
        evalue=draw(st.floats(min_value=0.0, max_value=100.0, allow_nan=False)),
        bits=draw(st.floats(min_value=0.0, max_value=5000.0, allow_nan=False)),
        matches=0,
        mismatches=0,
        strand=draw(st.sampled_from([1, -1])),
        speculative=draw(st.booleans()),
        path=path,
    )


class TestStreamingCodecProperties:
    @given(alignments(), st.integers(0, 500), st.booleans(), st.booleans())
    @settings(max_examples=80)
    def test_fragment_alignment_round_trip(self, aln, frag_idx, pl, pr):
        fa = FragmentAlignment(
            alignment=aln, fragment_index=frag_idx, partial_left=pl, partial_right=pr
        )
        back = decode_fragment_alignment(encode_fragment_alignment(fa))
        a, b = fa.alignment, back.alignment
        assert (a.query_id, a.subject_id, a.strand) == (b.query_id, b.subject_id, b.strand)
        assert (a.q_start, a.q_end, a.s_start, a.s_end) == (b.q_start, b.q_end, b.s_start, b.s_end)
        assert (a.score, a.evalue, a.bits, a.speculative) == (b.score, b.evalue, b.bits, b.speculative)
        assert (back.fragment_index, back.partial_left, back.partial_right) == (frag_idx, pl, pr)
        if a.path is None:
            assert b.path is None
        else:
            assert np.array_equal(a.path, b.path)

    @given(st.text(alphabet="abc|.0-9", min_size=1, max_size=20), st.sampled_from([1, -1]))
    def test_shuffle_key_round_trip(self, subject, strand):
        assert text_to_shuffle_key(shuffle_key_to_text((subject, strand))) == (subject, strand)


class TestTabularProperties:
    @given(alignments(with_path=False))
    @settings(max_examples=60)
    def test_tabular_round_trip_fields(self, aln):
        row = parse_tabular(format_tabular_row(aln))[0]
        assert row["qseqid"] == aln.query_id
        assert row["sseqid"] == aln.subject_id
        assert row["qstart"] == aln.q_start + 1
        assert row["qend"] == aln.q_end
        # subject endpoints swap on minus strand but preserve the interval
        assert {row["sstart"], row["send"]} == {aln.s_start + 1, aln.s_end}
