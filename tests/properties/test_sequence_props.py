"""Property-based tests for the sequence substrate."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sequence.alphabet import (
    decode,
    encode,
    is_valid,
    reverse_complement,
)
from repro.sequence.mutate import MutationModel, apply_mutations

dna = st.text(alphabet="ACGT", min_size=0, max_size=300)
dna_with_n = st.text(alphabet="ACGTN", min_size=0, max_size=300)
seeds = st.integers(min_value=0, max_value=2**31)


class TestAlphabetProperties:
    @given(dna_with_n)
    def test_encode_decode_round_trip(self, s):
        assert decode(encode(s)) == s

    @given(dna)
    def test_reverse_complement_involution(self, s):
        codes = encode(s)
        assert np.array_equal(reverse_complement(reverse_complement(codes)), codes)

    @given(dna)
    def test_reverse_complement_reverses_length_and_validity(self, s):
        rc = reverse_complement(encode(s))
        assert rc.shape[0] == len(s)
        assert is_valid(rc) or len(s) == 0

    @given(dna)
    def test_rc_of_concatenation(self, s):
        """rc(a + b) == rc(b) + rc(a)."""
        half = len(s) // 2
        a, b = encode(s[:half]), encode(s[half:])
        whole = reverse_complement(encode(s))
        parts = np.concatenate([reverse_complement(b), reverse_complement(a)])
        assert np.array_equal(whole, parts)


class TestMutationProperties:
    @given(dna.filter(lambda s: len(s) >= 10), seeds, st.floats(0.0, 0.4))
    @settings(max_examples=50)
    def test_substitution_only_preserves_length(self, s, seed, rate):
        rng = np.random.default_rng(seed)
        codes = encode(s)
        out = apply_mutations(rng, codes, MutationModel(substitution_rate=rate))
        assert out.shape == codes.shape
        assert is_valid(out)

    @given(dna.filter(lambda s: len(s) >= 10), seeds)
    @settings(max_examples=50)
    def test_indels_bound_length_change(self, s, seed):
        rng = np.random.default_rng(seed)
        codes = encode(s)
        model = MutationModel(
            substitution_rate=0.0, insertion_rate=0.1, deletion_rate=0.1, max_indel_length=2
        )
        out = apply_mutations(rng, codes, model)
        # deletions can at most remove everything; insertions at most
        # max_indel_length per base
        assert 0 <= out.size <= codes.size * (1 + 2)

    @given(dna, seeds)
    @settings(max_examples=30)
    def test_identity_model_is_identity(self, s, seed):
        rng = np.random.default_rng(seed)
        codes = encode(s)
        assert np.array_equal(apply_mutations(rng, codes, MutationModel.identity()), codes)
