"""Tests for the mpiBLAST runner."""

import pytest

from repro.cluster.hardware import CacheModel, DPMemoryModel, OutOfMemoryError
from repro.cluster.topology import ClusterSpec
from repro.mpiblast.runner import MpiBlastRunner
from tests.conftest import alignment_keys


@pytest.fixture(scope="module")
def mpi_result(small_db, query_with_truth):
    query, _ = query_with_truth
    runner = MpiBlastRunner()
    return runner.run([query], small_db, num_shards=4, cluster=ClusterSpec(nodes=2, cores_per_node=4))


class TestCorrectness:
    def test_equals_serial(self, mpi_result, serial_result, query_with_truth):
        """Database sharding is lossless: mpiBLAST == serial BLAST."""
        query, _ = query_with_truth
        assert alignment_keys(mpi_result.alignments[query.seq_id]) == alignment_keys(
            serial_result.alignments
        )

    def test_evalues_match_serial(self, mpi_result, serial_result, query_with_truth):
        query, _ = query_with_truth
        mpi_sorted = sorted(mpi_result.alignments[query.seq_id], key=lambda a: a.sort_key())
        for m, s in zip(mpi_sorted, serial_result.alignments):
            assert m.evalue == pytest.approx(s.evalue)

    def test_work_unit_count(self, mpi_result):
        assert len(mpi_result.records) == 4  # 1 query x 4 shards

    def test_makespan_positive(self, mpi_result):
        assert mpi_result.makespan_seconds > 0
        assert mpi_result.worker_busy_seconds.sum() > 0

    def test_all_alignments_sorted_by_query_id(self):
        """Regression (ORL004 fix): flattening must follow sorted query-id
        order, not the alignments dict's incidental insertion order."""
        import numpy as np

        from repro.blast.hsp import Alignment
        from repro.mpiblast.runner import MpiBlastResult

        def aln(qid):
            return Alignment(
                query_id=qid, subject_id="s", q_start=0, q_end=10,
                s_start=0, s_end=10, score=5, evalue=1e-6, bits=1.0,
            )

        result = MpiBlastResult(
            alignments={"q2": [aln("q2")], "q1": [aln("q1"), aln("q1")]},
            records=[],
            assignments=[],
            cluster=ClusterSpec(nodes=1),
            num_shards=1,
            makespan_seconds=0.0,
            worker_busy_seconds=np.zeros(1),
            total_measured_seconds=0.0,
        )
        assert [a.query_id for a in result.all_alignments()] == ["q1", "q1", "q2"]


class TestMemoryModel:
    def test_long_query_rejected(self, small_db, query_with_truth):
        query, _ = query_with_truth
        longest = int(small_db.lengths().max())
        model = DPMemoryModel(node_memory_bytes=1, bytes_per_cell=1.0)
        runner = MpiBlastRunner(memory_model=model)
        with pytest.raises(OutOfMemoryError, match="dynamic programming"):
            runner.run([query], small_db, num_shards=2, cluster=ClusterSpec(nodes=1))

    def test_enforcement_can_be_disabled(self, small_db, query_with_truth):
        query, _ = query_with_truth
        model = DPMemoryModel(node_memory_bytes=1, bytes_per_cell=1.0)
        runner = MpiBlastRunner(memory_model=model)
        res = runner.run(
            [query], small_db, num_shards=2, cluster=ClusterSpec(nodes=1),
            enforce_memory=False,
        )
        assert len(res.records) == 2

    def test_unit_scale_converts_to_paper_units(self, small_db, query_with_truth):
        """With unit_scale, a small synthetic query models a paper-size one."""
        query, _ = query_with_truth  # 60 kbp, modelling 60 Mbp at scale 1000
        longest = int(small_db.lengths().max())
        model = DPMemoryModel(node_memory_bytes=64 * 1024**3, bytes_per_cell=0.25)
        ok = MpiBlastRunner(memory_model=model, unit_scale=1.0)
        ok.check_memory(query, small_db)  # raw size: fine
        scaled = MpiBlastRunner(memory_model=model, unit_scale=5000.0)
        with pytest.raises(OutOfMemoryError):
            scaled.check_memory(query, small_db)


class TestCacheModel:
    def test_cache_factor_inflates_sim_time_only(self, small_db, query_with_truth):
        query, _ = query_with_truth
        cache = CacheModel(threshold=1000.0, exponent=1.0)  # query len 60k >> 1k
        runner = MpiBlastRunner(cache_model=cache)
        res = runner.run([query], small_db, num_shards=2, cluster=ClusterSpec(nodes=1))
        for rec in res.records:
            assert rec.sim_seconds == pytest.approx(rec.measured_seconds * 60.0, rel=0.01)

    def test_no_cache_model_identity(self, mpi_result):
        for rec in mpi_result.records:
            assert rec.sim_seconds == rec.measured_seconds


class TestValidation:
    def test_empty_queries_rejected(self, small_db):
        with pytest.raises(ValueError):
            MpiBlastRunner().run([], small_db, num_shards=2, cluster=ClusterSpec(nodes=1))

    def test_duplicate_query_ids_rejected(self, small_db, query_with_truth):
        query, _ = query_with_truth
        with pytest.raises(ValueError, match="duplicate"):
            MpiBlastRunner().run([query, query], small_db, num_shards=2, cluster=ClusterSpec(nodes=1))
