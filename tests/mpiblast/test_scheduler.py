"""Tests for the mpiBLAST master scheduler."""

import pytest

from repro.mpiblast.scheduler import MasterScheduler, makespan, per_worker_busy
from repro.units import WorkUnit, WorkUnitRecord


def unit_rec(qid, shard, seconds):
    return WorkUnitRecord(
        unit=WorkUnit(query_id=qid, shard_index=shard, query_span=1000),
        measured_seconds=seconds,
        sim_seconds=seconds,
    )


class TestMasterScheduler:
    def test_all_units_assigned_once(self):
        records = [unit_rec("q", s, 1.0) for s in range(6)]
        out = MasterScheduler(num_workers=2).schedule(records)
        assert len(out) == 6
        ids = [a.record.unit.task_id for a in out]
        assert len(set(ids)) == 6

    def test_greedy_balances_uniform_load(self):
        records = [unit_rec("q", s, 1.0) for s in range(8)]
        out = MasterScheduler(num_workers=4).schedule(records)
        busy = per_worker_busy(out, 4)
        assert all(b == pytest.approx(2.0) for b in busy)

    def test_long_unit_dominates_makespan(self):
        """The paper's load-imbalance pathology: one giant unit holds the
        job hostage regardless of worker count."""
        records = [unit_rec("big", 0, 100.0)] + [unit_rec("small", s, 1.0) for s in range(1, 20)]
        out = MasterScheduler(num_workers=16).schedule(records)
        assert makespan(out) >= 100.0

    def test_shard_affinity_preferred(self):
        """A worker that loaded shard 0 picks pending shard-0 units first."""
        records = [
            unit_rec("q1", 0, 1.0),
            unit_rec("q2", 1, 1.0),
            unit_rec("q3", 0, 1.0),
            unit_rec("q4", 1, 1.0),
        ]
        out = MasterScheduler(num_workers=2, shard_load_seconds=10.0).schedule(records)
        loads = sum(1 for a in out if a.shard_load_seconds > 0)
        assert loads == 2  # each worker loads exactly one shard

    def test_shard_load_cost_applied_once(self):
        records = [unit_rec("q1", 0, 1.0), unit_rec("q2", 0, 1.0)]
        out = MasterScheduler(num_workers=1, shard_load_seconds=5.0).schedule(records)
        assert makespan(out) == pytest.approx(5.0 + 2.0)

    def test_deterministic(self):
        records = [unit_rec("q", s % 3, float(s % 4) + 0.5) for s in range(12)]
        a = MasterScheduler(num_workers=3).schedule(records)
        b = MasterScheduler(num_workers=3).schedule(records)
        assert [(x.record.unit.task_id, x.worker, x.start) for x in a] == [
            (x.record.unit.task_id, x.worker, x.start) for x in b
        ]

    def test_empty(self):
        assert MasterScheduler(num_workers=2).schedule([]) == []
        assert makespan([]) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            MasterScheduler(num_workers=0)
        with pytest.raises(ValueError):
            MasterScheduler(num_workers=1, shard_load_seconds=-1)
