"""Tests for mpiBLAST query segmentation (Fig. 1's coarsest granularity)."""

import pytest

from repro.cluster.topology import ClusterSpec
from repro.mpiblast.runner import MpiBlastRunner
from tests.conftest import alignment_keys


@pytest.fixture(scope="module")
def query_pair(small_db):
    q1 = small_db.records[0].slice(0, 4000, seq_id="qa")
    q2 = small_db.records[1].slice(0, 3000, seq_id="qb")
    return [q1, q2]


class TestQuerySegmentation:
    def test_results_independent_of_segmentation(self, small_db, query_pair):
        """Batching queries into segments changes scheduling, not results."""
        cluster = ClusterSpec(nodes=2, cores_per_node=4)
        fine = MpiBlastRunner().run(query_pair, small_db, 4, cluster)
        coarse = MpiBlastRunner().run(
            query_pair, small_db, 4, cluster, queries_per_segment=2
        )
        for q in query_pair:
            assert alignment_keys(coarse.alignments[q.seq_id]) == alignment_keys(
                fine.alignments[q.seq_id]
            )

    def test_unit_counts(self, small_db, query_pair):
        cluster = ClusterSpec(nodes=1, cores_per_node=4)
        fine = MpiBlastRunner().run(query_pair, small_db, 4, cluster)
        coarse = MpiBlastRunner().run(
            query_pair, small_db, 4, cluster, queries_per_segment=2
        )
        assert len(fine.records) == 2 * 4
        assert len(coarse.records) == 1 * 4

    def test_segment_units_carry_combined_work(self, small_db, query_pair):
        cluster = ClusterSpec(nodes=1, cores_per_node=4)
        fine = MpiBlastRunner().run(query_pair, small_db, 4, cluster)
        coarse = MpiBlastRunner().run(
            query_pair, small_db, 4, cluster, queries_per_segment=2
        )
        assert coarse.records[0].unit.query_span == sum(len(q) for q in query_pair)
        # total measured work is conserved (same searches, different grouping)
        assert coarse.total_measured_seconds == pytest.approx(
            fine.total_measured_seconds, rel=0.5
        )

    def test_segment_ids_label_batches(self, small_db, query_pair):
        cluster = ClusterSpec(nodes=1, cores_per_node=4)
        coarse = MpiBlastRunner().run(
            query_pair, small_db, 4, cluster, queries_per_segment=2
        )
        assert all("segment000[2q]" in r.unit.task_id for r in coarse.records)

    def test_validation(self, small_db, query_pair):
        with pytest.raises(ValueError):
            MpiBlastRunner().run(
                query_pair, small_db, 4, ClusterSpec(nodes=1),
                queries_per_segment=0,
            )
