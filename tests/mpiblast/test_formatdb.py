"""Tests for mpiformatdb-style database sharding."""

import pytest

from repro.mpiblast.formatdb import shard_database, sharding_balance
from repro.sequence.generator import make_database
from repro.sequence.records import Database, SequenceRecord


class TestShardDatabase:
    def test_union_is_database_in_order(self, small_db):
        shards = shard_database(small_db, 4)
        ids = [r.seq_id for s in shards for r in s.database]
        assert ids == [r.seq_id for r in small_db]

    def test_shard_count(self, small_db):
        assert len(shard_database(small_db, 4)) == 4
        assert len(shard_database(small_db, 1)) == 1

    def test_cannot_exceed_sequence_count(self):
        db = Database([SequenceRecord.from_text(f"s{i}", "ACGT" * 10) for i in range(3)])
        shards = shard_database(db, 10)
        assert len(shards) == 3
        assert all(s.num_sequences == 1 for s in shards)

    def test_no_empty_shards(self, small_db):
        for n in (2, 5, 10, 20):
            shards = shard_database(small_db, n)
            assert all(s.num_sequences >= 1 for s in shards)

    def test_approximately_balanced(self):
        db = make_database(9, num_sequences=200, mean_length=2000)
        shards = shard_database(db, 8)
        assert sharding_balance(shards) < 1.35

    def test_indices_sequential(self, small_db):
        shards = shard_database(small_db, 5)
        assert [s.index for s in shards] == list(range(5))

    def test_shard_names(self, small_db):
        shards = shard_database(small_db, 2)
        assert shards[0].database.name.endswith(".000")

    def test_bad_count_rejected(self, small_db):
        with pytest.raises(ValueError):
            shard_database(small_db, 0)

    def test_balance_validation(self):
        with pytest.raises(ValueError):
            sharding_balance([])
