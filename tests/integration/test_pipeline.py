"""Cross-substrate integration: FASTA round trips, streaming, failures.

Exercises the seams between packages: the sequence layer feeding the
engine, the tabular format feeding the streaming MapReduce path, and the
simulator consuming real runner records.
"""

import pytest

from repro.blast.engine import BlastEngine
from repro.blast.formatter import format_tabular_row, parse_tabular
from repro.cluster.simulator import NodeFailure, simulate_phase
from repro.cluster.tasks import SimTask
from repro.cluster.topology import ClusterSpec
from repro.core.orion import OrionSearch
from repro.mapreduce.storage import BlockStore
from repro.mapreduce.streaming import run_streaming_job
from repro.sequence.fasta import read_fasta_str, write_fasta_str


class TestFastaThroughEngine:
    def test_round_tripped_query_gives_identical_results(
        self, engine, small_db, query_with_truth, serial_result
    ):
        query, _ = query_with_truth
        back = read_fasta_str(write_fasta_str([query]))[0]
        res = engine.search(back, small_db)
        from tests.conftest import alignment_keys

        assert alignment_keys(res.alignments) == alignment_keys(serial_result.alignments)


class TestTabularThroughStorage:
    def test_map_output_round_trips_via_block_store(self, serial_result):
        """The paper stages parsed BLAST output on HDFS between phases."""
        store = BlockStore(num_nodes=4)
        text = "\n".join(format_tabular_row(a) for a in serial_result.alignments)
        store.write_text("results/part-00000", text)
        rows = parse_tabular(store.read_text("results/part-00000"))
        assert len(rows) == len(serial_result.alignments)
        assert rows[0]["qseqid"] == serial_result.query_id


class TestStreamingAggregationShape:
    def test_tabular_streaming_job_groups_by_subject(self, serial_result):
        """Hadoop-streaming style: key = subject id (the paper's reduce key),
        value = the tabular row; the reducer counts alignments per subject."""
        lines = [format_tabular_row(a) for a in serial_result.alignments]

        def mapper(line):
            yield f"{line.split(chr(9))[1]}\t{line}"

        def reducer(subject, rows):
            yield f"{subject}\t{len(rows)}"

        out, result = run_streaming_job(lines, mapper, reducer, num_reducers=3)
        total = sum(int(line.split("\t")[1]) for line in out)
        assert total == len(serial_result.alignments)
        assert result.shuffle_keys == len({a.subject_id for a in serial_result.alignments})


class TestSimulatedFailureRecovery:
    def test_orion_work_survives_node_failure(self, small_db, query_with_truth):
        """Replaying Orion's map tasks with a node failure: every task still
        completes (Hadoop re-execution), makespan grows."""
        query, _ = query_with_truth
        orion = OrionSearch(database=small_db, num_shards=4, fragment_length=12_000)
        res = orion.run(query)
        tasks = [
            SimTask(task_id=r.unit.task_id, duration=max(r.sim_seconds, 1e-4))
            for r in res.map_records
        ]
        cluster = ClusterSpec(nodes=4, cores_per_node=2)
        clean = simulate_phase(tasks, cluster)
        failed = simulate_phase(
            tasks, cluster, failures=[NodeFailure(node=0, time=clean.end_time / 4)]
        )
        done = {s.task.task_id for s in failed.completed_tasks()}
        assert done == {t.task_id for t in tasks}
        assert failed.end_time >= clean.end_time - 1e-9
