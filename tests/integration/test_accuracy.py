"""The paper's central accuracy claim (Section V-C):

    "Orion achieved superior performance for the longer queries, [and] did
     not miss any alignments reported by mpiBLAST, which is the same as
     alignments reported by BLAST. Thus, the accuracy of Orion remained at
     100% for all the query sequences."

These tests assert the full equality chain — serial BLAST == mpiBLAST ==
Orion — across seeds, fragment lengths, shard counts and divergence levels,
on workloads with planted ground truth.
"""

import pytest

from repro.blast.engine import BlastEngine
from repro.cluster.topology import ClusterSpec
from repro.core.orion import OrionSearch
from repro.mpiblast.runner import MpiBlastRunner
from repro.sequence.generator import HomologySpec, make_database, make_query_with_homologies
from repro.sequence.mutate import MutationModel
from tests.conftest import alignment_keys


def build_workload(seed):
    db = make_database(seed=seed, num_sequences=25, mean_length=5000)
    query, truth = make_query_with_homologies(
        seed=seed + 1,
        length=70_000,
        database=db,
        homologies=[
            HomologySpec(length=1800, model=MutationModel.close_homolog()),
            HomologySpec(length=900, model=MutationModel.distant_homolog()),
            HomologySpec(
                length=1200,
                model=MutationModel(substitution_rate=0.06, insertion_rate=0.01, deletion_rate=0.01),
            ),
        ],
    )
    return db, query, truth


class TestEqualityChain:
    @pytest.mark.parametrize("seed", [11, 42])
    def test_serial_mpiblast_orion_identical(self, seed):
        db, query, truth = build_workload(seed)
        engine = BlastEngine()
        serial = alignment_keys(engine.search(query, db).alignments)

        mpi = MpiBlastRunner().run(
            [query], db, num_shards=5, cluster=ClusterSpec(nodes=2, cores_per_node=4)
        )
        assert alignment_keys(mpi.alignments[query.seq_id]) == serial

        for frag_len in (8000, 15_000):
            orion = OrionSearch(database=db, num_shards=5, fragment_length=frag_len)
            res = orion.run(query)
            assert alignment_keys(res.alignments) == serial, f"F={frag_len}"

    def test_every_planted_homology_reported(self):
        db, query, truth = build_workload(7)
        orion = OrionSearch(database=db, num_shards=5, fragment_length=9000)
        res = orion.run(query)
        for t in truth:
            qs, qe = t.query_interval
            hits = [
                a for a in res.alignments
                if a.subject_id == t.subject_id and a.q_start < qe and a.q_end > qs
            ]
            assert hits, f"planted homology {t.query_interval} missing from Orion output"

    def test_boundary_straddling_homology(self):
        """Force a homology to straddle a fragment boundary exactly and
        verify the aggregated alignment equals serial."""
        db, query, truth = build_workload(23)
        engine = BlastEngine()
        serial = alignment_keys(engine.search(query, db).alignments)
        t = truth[0]
        mid = sum(t.query_interval) // 2
        # choose a fragment length whose first boundary lands mid-homology
        orion = OrionSearch(database=db, num_shards=5)
        overlap, _ = orion.overlap_for_query(query)
        frag_len = mid + overlap // 2
        res = orion.run(query, fragment_length=frag_len)
        assert alignment_keys(res.alignments) == serial

    def test_shard_count_invariance(self):
        db, query, _ = build_workload(31)
        engine = BlastEngine()
        serial = alignment_keys(engine.search(query, db).alignments)
        for shards in (1, 3, 10):
            orion = OrionSearch(database=db, num_shards=shards, fragment_length=12_000)
            assert alignment_keys(orion.run(query).alignments) == serial

    def test_splice_mode_near_exact(self):
        """The paper-literal splice pipeline: equal on this workload (its
        known corner case — anchor-ambiguous dips — is rare)."""
        db, query, _ = build_workload(55)
        engine = BlastEngine()
        serial = set(alignment_keys(engine.search(query, db).alignments))
        orion = OrionSearch(
            database=db, num_shards=5, fragment_length=9000, aggregation_mode="splice"
        )
        got = set(alignment_keys(orion.run(query).alignments))
        # never invents alignments outside serial's regions; may split a
        # dip-straddling alignment in two (documented limitation).
        missing = serial - got
        extra = got - serial
        assert len(missing) <= 1
        assert len(extra) <= 2 * len(missing)
