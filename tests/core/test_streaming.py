"""Tests for the Hadoop-streaming text codec and streaming-mode Orion."""

import numpy as np
import pytest

from repro.blast.hsp import OP_DIAG, OP_QGAP, OP_SGAP, Alignment, cigar_to_path, path_to_cigar
from repro.core.orion import OrionSearch
from repro.core.results import FragmentAlignment
from repro.core.streaming import (
    decode_fragment_alignment,
    encode_fragment_alignment,
    shuffle_key_to_text,
    text_to_shuffle_key,
)
from tests.conftest import alignment_keys


class TestCigar:
    def test_round_trip(self):
        path = np.array([OP_DIAG] * 5 + [OP_QGAP] * 2 + [OP_DIAG] * 3 + [OP_SGAP], dtype=np.uint8)
        cigar = path_to_cigar(path)
        assert cigar == "5M2D3M1I"
        assert np.array_equal(cigar_to_path(cigar), path)

    def test_empty(self):
        assert path_to_cigar(np.zeros(0, dtype=np.uint8)) == ""
        assert cigar_to_path("").size == 0

    def test_long_runs_compact(self):
        path = np.full(10_000, OP_DIAG, dtype=np.uint8)
        assert path_to_cigar(path) == "10000M"

    @pytest.mark.parametrize("bad", ["M", "3X", "12", "3M4"])
    def test_malformed_rejected(self, bad):
        with pytest.raises(ValueError):
            cigar_to_path(bad)


class TestFragmentAlignmentCodec:
    def _fa(self, path=True):
        aln = Alignment(
            query_id="hs.contig", subject_id="db.seq00042", q_start=100, q_end=110,
            s_start=5, s_end=15, score=10, evalue=1.5e-12, bits=25.5,
            matches=9, mismatches=1, gap_opens=0, gap_columns=0,
            speculative=True,
            path=np.full(10, OP_DIAG, dtype=np.uint8) if path else None,
        )
        return FragmentAlignment(alignment=aln, fragment_index=3, partial_left=True)

    def test_round_trip(self):
        fa = self._fa()
        back = decode_fragment_alignment(encode_fragment_alignment(fa))
        assert back.fragment_index == 3
        assert back.partial_left and not back.partial_right
        a, b = fa.alignment, back.alignment
        assert a.query_id == b.query_id and a.subject_id == b.subject_id
        assert a.q_interval == b.q_interval and a.s_interval == b.s_interval
        assert a.score == b.score and a.evalue == b.evalue and a.bits == b.bits
        assert a.speculative == b.speculative
        assert np.array_equal(a.path, b.path)

    def test_pathless_round_trip(self):
        fa = self._fa(path=False)
        back = decode_fragment_alignment(encode_fragment_alignment(fa))
        assert back.alignment.path is None

    def test_evalue_precision_preserved(self):
        fa = self._fa()
        back = decode_fragment_alignment(encode_fragment_alignment(fa))
        assert back.alignment.evalue == fa.alignment.evalue  # repr round-trip

    def test_wrong_field_count_rejected(self):
        with pytest.raises(ValueError, match="fields"):
            decode_fragment_alignment("a\tb\tc")

    def test_shuffle_key_round_trip(self):
        assert text_to_shuffle_key(shuffle_key_to_text(("seq|weird", -1))) == ("seq|weird", -1)
        with pytest.raises(ValueError):
            text_to_shuffle_key("nodelimiter")


class TestStreamingOrion:
    def test_streaming_equals_object_mode(self, small_db, query_with_truth, serial_result):
        """The paper's Hadoop-streaming data path must change nothing."""
        query, _ = query_with_truth
        obj = OrionSearch(database=small_db, num_shards=4, fragment_length=9000)
        stream = OrionSearch(
            database=small_db, num_shards=4, fragment_length=9000, use_streaming=True
        )
        res_obj = obj.run(query)
        res_stream = stream.run(query)
        assert alignment_keys(res_stream.alignments) == alignment_keys(res_obj.alignments)
        assert alignment_keys(res_stream.alignments) == alignment_keys(serial_result.alignments)

    def test_streaming_merge_case(self, small_db, query_with_truth):
        """Boundary-crossing merges also survive the text round trip."""
        query, _ = query_with_truth
        stream = OrionSearch(
            database=small_db, num_shards=4, fragment_length=5000, use_streaming=True
        )
        obj = OrionSearch(database=small_db, num_shards=4, fragment_length=5000)
        assert alignment_keys(stream.run(query).alignments) == alignment_keys(
            obj.run(query).alignments
        )


class TestAutoCalibrationIntegration:
    def test_cached_sweet_spot_used(self, small_db, query_with_truth):
        from repro.cluster.topology import ClusterSpec
        from repro.core.calibrate import (
            calibrate_fragment_length,
            clear_calibration_cache,
        )

        clear_calibration_cache()
        try:
            query, _ = query_with_truth
            orion = OrionSearch(database=small_db, num_shards=4)
            before = orion.run(query)  # heuristic fragment length
            calibrate_fragment_length(
                orion, query, ClusterSpec(nodes=1, cores_per_node=4),
                fragment_lengths=[7000, 20_000],
            )
            after = orion.run(query)
            assert after.fragment_length in (7000, 20_000)
        finally:
            clear_calibration_cache()
