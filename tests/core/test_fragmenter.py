"""Tests for query fragmentation invariants."""

import numpy as np
import pytest

from repro.core.fragmenter import fragment_query, suggest_fragment_length
from repro.sequence.records import SequenceRecord


def q(n):
    rng = np.random.default_rng(3)
    from repro.sequence.alphabet import random_bases

    return SequenceRecord(seq_id="q", codes=random_bases(rng, n))


class TestFragmentQuery:
    def test_single_fragment_when_short(self):
        frags = fragment_query(q(500), fragment_length=1000, overlap=20)
        assert len(frags) == 1
        assert frags[0].is_first and frags[0].is_last
        assert frags[0].length == 500

    def test_full_coverage_no_gaps(self):
        query = q(10_000)
        frags = fragment_query(query, 1500, 30)
        covered = np.zeros(10_000, dtype=bool)
        for f in frags:
            covered[f.offset : f.end] = True
        assert covered.all()

    def test_exact_overlap_between_neighbours(self):
        frags = fragment_query(q(10_000), 1500, 30)
        for a, b in zip(frags, frags[1:]):
            assert a.end - b.offset >= 30
            if not b.is_last:
                assert a.end - b.offset == 30

    def test_equal_sized_interior_fragments(self):
        frags = fragment_query(q(10_000), 1500, 30)
        for f in frags[:-1]:
            assert f.length == 1500

    def test_content_is_view_of_query(self):
        query = q(5000)
        for f in fragment_query(query, 1200, 16):
            assert np.array_equal(f.record.codes, query.codes[f.offset : f.end])

    def test_edge_flags(self):
        frags = fragment_query(q(10_000), 1500, 30)
        assert frags[0].is_first and not frags[0].is_last
        assert frags[-1].is_last and not frags[-1].is_first
        for f in frags[1:-1]:
            assert not f.is_first and not f.is_last

    def test_fragment_ids(self):
        frags = fragment_query(q(5000), 1200, 16)
        assert frags[0].record.seq_id == "q.frag0000"
        assert frags[2].record.seq_id == "q.frag0002"

    def test_to_global(self):
        frags = fragment_query(q(5000), 1200, 16)
        f = frags[1]
        assert f.to_global(0) == f.offset
        with pytest.raises(ValueError):
            f.to_global(f.length + 1)

    def test_exact_multiple_boundary(self):
        """Query length exactly landing on a stride boundary."""
        frags = fragment_query(q(2970), 1000, 10)  # stride 990: 0, 990, 1980 (ends 2980>2970)
        assert frags[-1].end == 2970
        covered = sum(f.length for f in frags) - sum(
            frags[i].end - frags[i + 1].offset for i in range(len(frags) - 1)
        )
        assert covered == 2970

    def test_validation(self):
        with pytest.raises(ValueError):
            fragment_query(q(100), 0, 0)
        with pytest.raises(ValueError):
            fragment_query(q(100), 10, 10)


class TestSuggestFragmentLength:
    def test_targets_units_per_slot(self):
        # 64 slots * 4 units / 16 shards = 16 fragments
        frag = suggest_fragment_length(
            query_length=1_600_000, overlap=32, num_shards=16, total_slots=64
        )
        assert 90_000 <= frag <= 120_000

    def test_floor_respected(self):
        frag = suggest_fragment_length(
            query_length=10_000, overlap=32, num_shards=64, total_slots=1024,
            min_fragment_length=5_000,
        )
        assert frag >= 5_000

    def test_never_below_overlap_scale(self):
        frag = suggest_fragment_length(
            query_length=100_000, overlap=2000, num_shards=4, total_slots=1024
        )
        assert frag >= 8000

    def test_capped_at_query(self):
        frag = suggest_fragment_length(
            query_length=3000, overlap=16, num_shards=1, total_slots=1
        )
        assert frag <= 3000 + 16
