"""Tests for per-fragment boundary options."""

import pytest

from repro.core.boundary import options_for_fragment
from repro.core.fragmenter import fragment_query
from repro.sequence.records import SequenceRecord


def frags():
    q = SequenceRecord.from_text("q", "ACGT" * 2500)  # 10 kbp
    return fragment_query(q, 3000, 50)


class TestOptionsForFragment:
    def test_first_fragment_right_boundary_only(self):
        opts = options_for_fragment(frags()[0])
        assert not opts.boundary_left
        assert opts.boundary_right
        assert opts.speculative
        assert opts.boundary_margin == 50

    def test_interior_fragment_both(self):
        opts = options_for_fragment(frags()[1])
        assert opts.boundary_left and opts.boundary_right

    def test_last_fragment_left_only(self):
        opts = options_for_fragment(frags()[-1])
        assert opts.boundary_left and not opts.boundary_right

    def test_single_fragment_behaves_like_serial(self):
        q = SequenceRecord.from_text("q", "ACGT" * 100)
        only = fragment_query(q, 1000, 20)[0]
        opts = options_for_fragment(only)
        assert not opts.boundary_left and not opts.boundary_right
        assert not opts.speculative
        assert opts.boundary_margin == 0

    def test_speculation_can_be_disabled(self):
        opts = options_for_fragment(frags()[1], speculative=False)
        assert not opts.speculative
        assert opts.boundary_left  # flags still set for partial marking

    def test_both_strands_sets_both_flags(self):
        opts = options_for_fragment(frags()[0], strands="both")
        assert opts.boundary_left and opts.boundary_right

    def test_traceback_flag_passthrough(self):
        assert options_for_fragment(frags()[0], keep_traceback=False).keep_traceback is False
