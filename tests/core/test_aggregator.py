"""Tests for the reduce-phase aggregation."""

import numpy as np
import pytest

from repro.blast.hsp import OP_DIAG, Alignment
from repro.core.aggregator import (
    AggregationStats,
    _cluster,
    _cull_contained,
    _dedupe_locations,
    aggregate_subject_alignments,
)
from repro.core.results import FragmentAlignment
from repro.sequence.alphabet import random_bases


def mk(qs, qe, ss, se, score=10, evalue=1e-6, spec=False):
    return Alignment(
        query_id="q", subject_id="s", q_start=qs, q_end=qe, s_start=ss, s_end=se,
        score=score, evalue=evalue, bits=1.0,
        path=np.array([OP_DIAG] * (qe - qs), dtype=np.uint8) if qe - qs == se - ss else None,
        speculative=spec,
    )


def frag(aln, idx=0, left=False, right=False):
    return FragmentAlignment(alignment=aln, fragment_index=idx, partial_left=left, partial_right=right)


class TestDedupeLocations:
    def test_duplicates_collapse_keeping_best(self):
        items = [frag(mk(0, 10, 0, 10, score=5)), frag(mk(0, 10, 0, 10, score=9))]
        kept, removed = _dedupe_locations(items)
        assert removed == 1
        assert kept[0].alignment.score == 9

    def test_flags_or_combined(self):
        items = [
            frag(mk(0, 10, 0, 10), left=True),
            frag(mk(0, 10, 0, 10), right=True),
        ]
        kept, _ = _dedupe_locations(items)
        assert kept[0].partial_left and kept[0].partial_right

    def test_distinct_locations_kept(self):
        items = [frag(mk(0, 10, 0, 10)), frag(mk(20, 30, 20, 30))]
        kept, removed = _dedupe_locations(items)
        assert len(kept) == 2 and removed == 0


class TestCullContained:
    def test_contained_lower_scorer_dropped(self):
        out = _cull_contained([mk(0, 50, 0, 50, score=40), mk(10, 20, 10, 20, score=5)])
        assert len(out) == 1

    def test_partial_overlap_kept(self):
        out = _cull_contained([mk(0, 30, 0, 30, score=20), mk(20, 50, 20, 50, score=20)])
        assert len(out) == 2


class TestCluster:
    def test_nearby_grouped(self):
        items = [frag(mk(0, 100, 0, 100)), frag(mk(150, 250, 150, 250))]
        groups = _cluster(items, tol=60)
        assert len(groups) == 1

    def test_far_apart_separate(self):
        items = [frag(mk(0, 100, 0, 100)), frag(mk(1000, 1100, 1000, 1100))]
        groups = _cluster(items, tol=60)
        assert len(groups) == 2

    def test_subject_distance_matters(self):
        """Close in query but far in subject: different alignments."""
        items = [frag(mk(0, 100, 0, 100)), frag(mk(50, 150, 5000, 5100))]
        assert len(_cluster(items, tol=60)) == 2

    def test_chain_transitive(self):
        items = [
            frag(mk(0, 100, 0, 100)),
            frag(mk(120, 220, 120, 220)),
            frag(mk(240, 340, 240, 340)),
        ]
        assert len(_cluster(items, tol=60)) == 1

    def test_groups_ordered_by_smallest_member(self):
        """Regression (ORL004 fix): cluster order is pinned to the smallest
        member index, independent of union-find root choice."""
        items = [
            frag(mk(1000, 1100, 1000, 1100)),
            frag(mk(0, 100, 0, 100)),
            frag(mk(1010, 1110, 1010, 1110)),
            frag(mk(5, 105, 5, 105)),
        ]
        groups = _cluster(items, tol=60)
        assert groups == [[0, 2], [1, 3]]
        assert [g[0] for g in groups] == sorted(g[0] for g in groups)


class TestAggregateResearchMode:
    def _context(self, engine):
        rng = np.random.default_rng(10)
        q = random_bases(rng, 3000)
        s = np.concatenate([random_bases(rng, 200), q[500:1500], random_bases(rng, 200)])
        space = engine.search_space(3000, s.size, 1)
        return q, s, space

    def test_cross_boundary_partials_resolve_to_serial(self, engine):
        """Two halves of one 1000 bp homology, cut at query position 1000,
        must come back as the single serial alignment."""
        q, s, space = self._context(engine)
        # Ground truth: q[500:1500) == s[200:1200)
        left = Alignment(
            query_id="q", subject_id="s", q_start=500, q_end=1000,
            s_start=200, s_end=700, score=500, evalue=1e-100, bits=1.0,
            path=np.array([OP_DIAG] * 500, dtype=np.uint8),
        )
        right = Alignment(
            query_id="q", subject_id="s", q_start=1000, q_end=1500,
            s_start=700, s_end=1200, score=500, evalue=1e-100, bits=1.0,
            path=np.array([OP_DIAG] * 500, dtype=np.uint8),
        )
        items = [frag(left, 0, right=True), frag(right, 1, left=True)]
        finals, stats = aggregate_subject_alignments(items, q, s, engine, space)
        assert len(finals) == 1
        # The re-search may extend a base or two into chance matches at the
        # flanks — exactly what serial BLAST does; the core must be covered.
        assert finals[0].q_start <= 500 and finals[0].q_end >= 1500
        assert finals[0].score >= 1000
        assert stats.clusters_resolved == 1

    def test_non_partial_singleton_passthrough(self, engine):
        q, s, space = self._context(engine)
        aln = Alignment(
            query_id="q", subject_id="s", q_start=500, q_end=1500,
            s_start=200, s_end=1200, score=1000, evalue=1e-200, bits=1.0,
            path=np.array([OP_DIAG] * 1000, dtype=np.uint8),
        )
        finals, stats = aggregate_subject_alignments([frag(aln)], q, s, engine, space)
        assert len(finals) == 1
        assert finals[0] is aln  # untouched
        assert stats.clusters_resolved == 0

    def test_failing_evalue_singleton_dropped(self, engine):
        q, s, space = self._context(engine)
        weak = mk(0, 12, 0, 12, score=12, evalue=50.0)
        finals, stats = aggregate_subject_alignments([frag(weak)], q, s, engine, space)
        assert finals == []
        assert stats.dropped_partials == 1

    def test_empty_input(self, engine):
        q, s, space = self._context(engine)
        finals, stats = aggregate_subject_alignments([], q, s, engine, space)
        assert finals == [] and stats.input_alignments == 0

    def test_invalid_mode_rejected(self, engine):
        q, s, space = self._context(engine)
        with pytest.raises(ValueError):
            aggregate_subject_alignments([], q, s, engine, space, mode="magic")


class TestAggregationStats:
    def test_merge(self):
        a = AggregationStats(input_alignments=3, merged_pairs=1)
        b = AggregationStats(input_alignments=2, dropped_partials=1)
        a.merge(b)
        assert a.input_alignments == 5
        assert a.dropped_partials == 1
        assert a.merged_pairs == 1
