"""OrionSearch shard pruning: prepare()-level behaviour and plumbing.

End-to-end accuracy is gated by ``benchmarks/bench_pruning.py``; these
tests pin the mechanics — split subsetting and re-enumeration, the stats
fields, probe-path selection, and pickling hygiene.
"""

import numpy as np
import pytest

from repro.core.orion import OrionSearch
from repro.sequence.generator import (
    HomologySpec,
    make_database,
    make_query_with_homologies,
)
from repro.sequence.mutate import MutationModel


@pytest.fixture(scope="module")
def db():
    return make_database(41, num_sequences=16, mean_length=600)


@pytest.fixture(scope="module")
def query(db):
    q, _ = make_query_with_homologies(
        42,
        length=5000,
        database=db,
        homologies=[HomologySpec(length=400, model=MutationModel.close_homolog())] * 2,
    )
    return q


@pytest.fixture(scope="module")
def planted(db):
    _, truth = make_query_with_homologies(
        42,
        length=5000,
        database=db,
        homologies=[HomologySpec(length=400, model=MutationModel.close_homolog())] * 2,
    )
    return truth


def make_search(db, **kw):
    kw.setdefault("num_shards", 8)
    kw.setdefault("fragment_length", 2000)
    return OrionSearch(db, **kw)


class TestPrepare:
    def test_no_threshold_emits_full_cross_product(self, db, query):
        search = make_search(db)
        plan = search.prepare(query)
        assert len(plan.splits) == len(plan.fragments) * len(search.shards)
        assert plan.pruned_map_tasks == 0
        assert plan.shards_searched == len(search.shards)
        assert plan.shards_pruned == 0
        # No probing happened: the sketch index was never built.
        assert search._sketch_index is None

    def test_threshold_zero_probes_but_keeps_all(self, db, query):
        search = make_search(db, prune_threshold=0.0)
        plan = search.prepare(query)
        assert len(plan.splits) == len(plan.fragments) * len(search.shards)
        assert plan.pruned_map_tasks == 0
        assert search._sketch_index is not None  # the probe machinery ran

    def test_pruned_splits_are_subset_and_contiguous(self, db, query):
        base = make_search(db).prepare(query)
        pruned = make_search(db, prune_threshold=0.05).prepare(query)
        base_pairs = {
            (f.index, shard_index) for f, shard_index in
            (s.payload for s in base.splits)
        }
        pruned_pairs = [
            (f.index, shard_index) for f, shard_index in
            (s.payload for s in pruned.splits)
        ]
        assert set(pruned_pairs) <= base_pairs
        assert len(pruned_pairs) == len(set(pruned_pairs))
        # Split indexes are re-enumerated 0..n-1 (spill naming depends on it).
        assert [s.index for s in pruned.splits] == list(range(len(pruned.splits)))
        assert pruned.pruned_map_tasks == len(base.splits) - len(pruned.splits)

    def test_stats_add_up(self, db, query):
        search = make_search(db, prune_threshold=0.05)
        plan = search.prepare(query)
        assert plan.shards_searched + plan.shards_pruned == len(search.shards)
        searched = {shard_index for _, shard_index in (s.payload for s in plan.splits)}
        assert plan.shards_searched == len(searched)

    def test_aggressive_threshold_keeps_planted_shard(self, db, query, planted):
        """Even at a high threshold, the exact-homolog shards must survive
        for the fragments that carry the homology."""
        search = make_search(db, prune_threshold=0.05)
        plan = search.prepare(query)
        kept_shards = {
            shard_index for _, shard_index in (s.payload for s in plan.splits)
        }
        planted_shards = {
            shard.index
            for shard in search.shards
            for rec in shard.database
            if rec.seq_id in {p.subject_id for p in planted}
        }
        assert planted_shards <= kept_shards

    def test_result_carries_pruning_stats(self, db, query):
        res = make_search(db, prune_threshold=0.05).run(query)
        assert res.pruned_map_tasks > 0
        assert res.num_work_units == len(res.map_records)
        assert res.shards_searched + res.shards_pruned == 8
        rescaled = res.rescaled(2.0)
        assert rescaled.pruned_map_tasks == res.pruned_map_tasks
        assert rescaled.shards_searched == res.shards_searched
        assert rescaled.shards_pruned == res.shards_pruned

    def test_invalid_threshold_rejected(self, db):
        with pytest.raises(ValueError, match="prune_threshold"):
            make_search(db, prune_threshold=1.5)


class TestPlumbing:
    def test_pickle_drops_sketch_index(self, db, query):
        import pickle

        search = make_search(db, prune_threshold=0.0)
        search.prepare(query)
        assert search._sketch_index is not None
        clone = pickle.loads(pickle.dumps(search))
        assert clone._sketch_index is None
        # And the clone can rebuild it on demand.
        plan = clone.prepare(query)
        assert len(plan.splits) > 0

    def test_warmup_builds_sketch_index(self, db):
        search = make_search(db, prune_threshold=0.02)
        assert search._sketch_index is None
        search.warmup()
        assert search._sketch_index is not None
        search.close()

    def test_warmup_without_pruning_skips_index(self, db):
        search = make_search(db)
        search.warmup()
        assert search._sketch_index is None
        search.close()

    def test_both_strands_probe_catches_minus_only_homology(self, db):
        """A homology present only as the reverse complement must still
        keep its shard when searching both strands."""
        from repro.sequence.alphabet import reverse_complement
        from repro.sequence.records import Database, SequenceRecord

        rng = np.random.default_rng(77)
        from repro.sequence.alphabet import random_bases

        insert = random_bases(rng, 400)
        query_codes = np.concatenate(
            [random_bases(rng, 1000), insert, random_bases(rng, 1000)]
        )
        subject_codes = np.concatenate(
            [random_bases(rng, 300), reverse_complement(insert), random_bases(rng, 300)]
        )
        decoys = [
            SequenceRecord(f"decoy{i}", random_bases(rng, 800))
            for i in range(7)
        ]
        target = SequenceRecord("rc-target", subject_codes)
        db2 = Database([target] + decoys, name="rcdb")
        query = SequenceRecord("q", query_codes)

        search = OrionSearch(
            db2,
            num_shards=8,
            fragment_length=1200,
            strands="both",
            prune_threshold=0.05,
        )
        plan = search.prepare(query)
        kept = {shard_index for _, shard_index in (s.payload for s in plan.splits)}
        home = next(
            s.index
            for s in search.shards
            if any(r.seq_id == "rc-target" for r in s.database)
        )
        assert home in kept
        # And the alignment itself survives end to end.
        res = search.run(query)
        assert any(a.subject_id == "rc-target" for a in res.alignments)
