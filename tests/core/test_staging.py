"""Tests for the block-store-staged Orion pipeline."""

import pytest

from repro.blast.formatter import parse_tabular
from repro.core.orion import OrionSearch
from repro.core.staging import run_staged
from repro.mapreduce.storage import BlockStore
from tests.conftest import alignment_keys


@pytest.fixture(scope="module")
def staged(small_db, query_with_truth):
    query, _ = query_with_truth
    orion = OrionSearch(database=small_db, num_shards=4, fragment_length=12_000)
    store = BlockStore(num_nodes=4, block_size=64 * 1024)
    return run_staged(orion, query, store), orion, query


class TestStagedRun:
    def test_all_stages_present(self, staged):
        run, _, _ = staged
        assert set(run.stages) == {"shards", "fragments", "map-output", "results"}

    def test_shards_cover_database(self, staged, small_db):
        run, _, _ = staged
        assert run.stages["shards"].files == 4
        from repro.sequence.fasta import read_fasta_str

        ids = []
        for path in run.store.listdir("shards"):
            ids.extend(r.seq_id for r in read_fasta_str(run.store.read_text(path)))
        assert sorted(ids) == sorted(r.seq_id for r in small_db)

    def test_fragments_cover_query(self, staged, query_with_truth):
        run, _, query = staged
        from repro.sequence.fasta import read_fasta_str

        total = 0
        for path in run.store.listdir("fragments"):
            recs = read_fasta_str(run.store.read_text(path))
            total += sum(len(r) for r in recs)
        assert total >= len(query)  # overlaps make it strictly larger

    def test_map_output_per_work_unit(self, staged):
        run, _, _ = staged
        assert run.stages["map-output"].files == run.result.num_work_units

    def test_results_parse_back(self, staged, serial_result):
        run, _, _ = staged
        rows = parse_tabular(run.store.read_text("results/part-00000.tsv"))
        assert len(rows) == len(run.result.alignments)
        assert len(rows) == len(serial_result.alignments)

    def test_result_equals_serial(self, staged, serial_result):
        run, _, _ = staged
        assert alignment_keys(run.result.alignments) == alignment_keys(
            serial_result.alignments
        )

    def test_footprint_accounting(self, staged):
        run, _, _ = staged
        assert run.total_bytes() == run.store.total_bytes
        assert run.stages["shards"].bytes > run.stages["results"].bytes
        rows = run.report_rows()
        assert len(rows) == 4
