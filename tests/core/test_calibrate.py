"""Tests for fragment-length calibration (Section III-D / Fig. 11)."""

import pytest

from repro.cluster.topology import ClusterSpec
from repro.core.calibrate import (
    calibrate_fragment_length,
    cached_fragment_length,
    clear_calibration_cache,
    default_sweep_lengths,
)
from repro.core.orion import OrionSearch


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_calibration_cache()
    yield
    clear_calibration_cache()


class TestDefaultSweepLengths:
    def test_geometric_and_bounded(self):
        lengths = default_sweep_lengths(100_000, overlap=32, count=6)
        assert lengths == sorted(lengths)
        assert lengths[0] >= 1000
        assert lengths[-1] <= 100_000
        assert all(l > 32 for l in lengths)

    def test_count_validated(self):
        with pytest.raises(ValueError):
            default_sweep_lengths(1000, 16, count=1)


class TestCalibration:
    def test_sweep_and_cache(self, small_db, query_with_truth):
        query, _ = query_with_truth
        orion = OrionSearch(database=small_db, num_shards=4)
        cluster = ClusterSpec(nodes=2, cores_per_node=4)
        calib = calibrate_fragment_length(
            orion, query, cluster, fragment_lengths=[8000, 20_000, 60_000]
        )
        assert len(calib.points) == 3
        assert calib.best_fragment_length in {8000, 20_000, 60_000}
        assert all(p.makespan_seconds > 0 for p in calib.points)
        # memoized for this (database, length-bucket)
        assert cached_fragment_length(small_db.name, len(query)) == calib.best_fragment_length

    def test_cache_buckets_by_length(self, small_db, query_with_truth):
        query, _ = query_with_truth
        orion = OrionSearch(database=small_db, num_shards=4)
        cluster = ClusterSpec(nodes=1, cores_per_node=4)
        calibrate_fragment_length(orion, query, cluster, fragment_lengths=[20_000])
        # same bucket (within 2x): hit
        assert cached_fragment_length(small_db.name, len(query) + 10) is not None
        # far smaller query: different bucket -> miss
        assert cached_fragment_length(small_db.name, 100) is None

    def test_empty_sweep_rejected(self, small_db, query_with_truth):
        query, _ = query_with_truth
        orion = OrionSearch(database=small_db, num_shards=4)
        with pytest.raises(ValueError):
            calibrate_fragment_length(
                orion, query, ClusterSpec(nodes=1), fragment_lengths=[]
            )

    def test_points_record_parallelism_tradeoff(self, small_db, query_with_truth):
        """Shorter fragments -> more work units (the Fig. 11 x-axis)."""
        query, _ = query_with_truth
        orion = OrionSearch(database=small_db, num_shards=4)
        calib = calibrate_fragment_length(
            orion, query, ClusterSpec(nodes=1, cores_per_node=4),
            fragment_lengths=[8000, 30_000], use_cache=False,
        )
        units = {p.fragment_length: p.num_work_units for p in calib.points}
        assert units[8000] > units[30_000]
