"""Tests for alignment merging: splice, bridge, trim, x-drop splitting."""

import numpy as np
import pytest

from repro.blast.hsp import OP_DIAG, OP_QGAP, OP_SGAP, Alignment, score_path
from repro.core.merge import (
    column_scores,
    path_positions,
    split_alignment_at_drops,
    trim_path_to_peaks,
    try_merge_pair,
)
from repro.sequence.alphabet import encode, random_bases

P = dict(reward=1, penalty=-3, gap_open=5, gap_extend=2)


def mk(qs, qe, ss, se, path, subject="s", strand=1, score=10):
    return Alignment(
        query_id="q", subject_id=subject, q_start=qs, q_end=qe,
        s_start=ss, s_end=se, score=score, evalue=1e-5, bits=1.0,
        strand=strand, path=np.asarray(path, dtype=np.uint8),
    )


def diag(n):
    return [OP_DIAG] * n


class TestPathPositions:
    def test_diag_only(self):
        qp, sp = path_positions(np.array(diag(3), dtype=np.uint8), 10, 20)
        assert qp.tolist() == [10, 11, 12]
        assert sp.tolist() == [20, 21, 22]

    def test_gaps_shift_one_side(self):
        path = np.array([OP_DIAG, OP_QGAP, OP_DIAG], dtype=np.uint8)
        qp, sp = path_positions(path, 0, 0)
        assert qp.tolist() == [0, 1, 1]
        assert sp.tolist() == [0, 1, 2]


class TestTryMergeSplice:
    def test_overlapping_with_common_pair(self):
        # a: q[0,10) vs s[0,10); b: q[5,15) vs s[5,15) — same diagonal
        a = mk(0, 10, 0, 10, diag(10))
        b = mk(5, 15, 5, 15, diag(10))
        m = try_merge_pair(a, b, **P)
        assert m is not None
        assert (m.q_start, m.q_end) == (0, 15)
        assert (m.s_start, m.s_end) == (0, 15)
        assert m.path.size == 15

    def test_argument_order_irrelevant(self):
        a = mk(0, 10, 0, 10, diag(10))
        b = mk(5, 15, 5, 15, diag(10))
        m1 = try_merge_pair(a, b, **P)
        m2 = try_merge_pair(b, a, **P)
        assert (m1.q_start, m1.q_end) == (m2.q_start, m2.q_end)

    def test_different_subject_or_strand_rejected(self):
        a = mk(0, 10, 0, 10, diag(10))
        assert try_merge_pair(a, mk(5, 15, 5, 15, diag(10), subject="t"), **P) is None
        assert try_merge_pair(a, mk(5, 15, 5, 15, diag(10), strand=-1), **P) is None

    def test_contained_rejected(self):
        a = mk(0, 20, 0, 20, diag(20))
        b = mk(5, 15, 5, 15, diag(10))
        assert try_merge_pair(a, b, **P) is None

    def test_overlap_on_different_diagonals_no_common_pair(self):
        # q-intervals overlap but subject positions disagree; no bridge
        # context (no sequences passed) -> no merge
        a = mk(0, 10, 0, 10, diag(10))
        b = mk(5, 15, 100, 110, diag(10))
        assert try_merge_pair(a, b) is None

    def test_missing_path_rejected(self):
        a = mk(0, 10, 0, 10, diag(10))
        b = Alignment(
            query_id="q", subject_id="s", q_start=5, q_end=15, s_start=5, s_end=15,
            score=10, evalue=1e-5, bits=1.0,
        )
        assert try_merge_pair(a, b, **P) is None


class TestTryMergeBridge:
    def test_adjacent_alignments_bridged(self):
        rng = np.random.default_rng(0)
        seq = random_bases(rng, 40)
        # two alignments of seq against itself with a 4-base gap between
        a = mk(0, 15, 0, 15, diag(15))
        b = mk(19, 35, 19, 35, diag(16))
        m = try_merge_pair(a, b, q_codes=seq, s_codes=seq, **P)
        assert m is not None
        assert (m.q_start, m.q_end) == (0, 35)
        # bridge over identical sequence is pure diagonal
        assert m.path.size == 35
        assert np.all(m.path == OP_DIAG)

    def test_bridge_with_indel(self):
        rng = np.random.default_rng(1)
        q = random_bases(rng, 50)
        s = np.concatenate([q[:25], random_bases(rng, 2), q[25:]])  # 2-base insert
        a = mk(0, 20, 0, 20, diag(20))
        b = mk(30, 50, 32, 52, diag(20))
        m = try_merge_pair(a, b, q_codes=q, s_codes=s, **P)
        assert m is not None
        assert m.q_end - m.q_start == 50
        assert m.s_end - m.s_start == 52
        n_qgap = int(np.count_nonzero(m.path == OP_QGAP))
        assert n_qgap == 2

    def test_gap_beyond_max_bridge_rejected(self):
        rng = np.random.default_rng(2)
        seq = random_bases(rng, 2000)
        a = mk(0, 100, 0, 100, diag(100))
        b = mk(900, 1000, 900, 1000, diag(100))
        assert try_merge_pair(a, b, q_codes=seq, s_codes=seq, max_bridge=100, **P) is None

    def test_bridge_requires_sequences(self):
        a = mk(0, 10, 0, 10, diag(10))
        b = mk(15, 25, 15, 25, diag(10))
        assert try_merge_pair(a, b, **P) is None


class TestTrimPathToPeaks:
    def test_identity_on_clean_alignment(self):
        rng = np.random.default_rng(3)
        seq = random_bases(rng, 30)
        a = mk(0, 30, 0, 30, diag(30))
        out = trim_path_to_peaks(a, seq, seq, **P)
        assert (out.q_start, out.q_end) == (0, 30)

    def test_trailing_mismatches_trimmed(self):
        rng = np.random.default_rng(4)
        q = random_bases(rng, 30)
        s = q.copy()
        s[25:] = (s[25:] + 1) % 4  # last 5 mismatch
        a = mk(0, 30, 0, 30, diag(30))
        out = trim_path_to_peaks(a, q, s, **P)
        assert out.q_end == 25

    def test_leading_mismatches_trimmed(self):
        rng = np.random.default_rng(5)
        q = random_bases(rng, 30)
        s = q.copy()
        s[:5] = (s[:5] + 1) % 4
        a = mk(0, 30, 0, 30, diag(30))
        out = trim_path_to_peaks(a, q, s, **P)
        assert out.q_start == 5
        assert out.q_end == 30

    def test_all_negative_collapses_to_empty(self):
        q = encode("AAAA")
        s = encode("CCCC")
        a = mk(0, 4, 0, 4, diag(4))
        out = trim_path_to_peaks(a, q, s, **P)
        assert out.path.size == 0
        assert out.q_start == out.q_end

    def test_trimmed_score_is_peak(self):
        rng = np.random.default_rng(6)
        q = random_bases(rng, 60)
        s = q.copy()
        s[50:] = (s[50:] + 1) % 4
        s[:3] = (s[:3] + 1) % 4
        a = mk(0, 60, 0, 60, diag(60))
        out = trim_path_to_peaks(a, q, s, **P)
        rescored = score_path(out.path, q, s, out.q_start, out.s_start, **P)
        # peak = 47 matches
        assert rescored == 47


class TestSplitAtDrops:
    def test_no_split_within_tolerance(self):
        rng = np.random.default_rng(7)
        q = random_bases(rng, 40)
        s = q.copy()
        s[20:23] = (s[20:23] + 1) % 4  # dip of 9+3 < 15... 3 mismatches = -9-3? -12 total swing
        a = mk(0, 40, 0, 40, diag(40))
        out = split_alignment_at_drops(a, q, s, x_drop=15, **P)
        assert len(out) == 1

    def test_split_at_deep_dip(self):
        rng = np.random.default_rng(8)
        q = random_bases(rng, 60)
        s = q.copy()
        s[25:35] = (s[25:35] + 1) % 4  # 10 mismatches: dip of 30 > 15
        a = mk(0, 60, 0, 60, diag(60))
        out = split_alignment_at_drops(a, q, s, x_drop=15, **P)
        assert len(out) == 2
        assert out[0].q_end == 25  # ends at the peak before the dip
        assert out[1].q_start > 25  # dip columns belong to neither piece
        assert out[1].q_end == 60

    def test_pieces_ordered_disjoint_and_cover_homology(self):
        rng = np.random.default_rng(9)
        q = random_bases(rng, 80)
        s = q.copy()
        s[30:40] = (s[30:40] + 1) % 4
        s[60:70] = (s[60:70] + 1) % 4
        a = mk(0, 80, 0, 80, diag(80))
        out = split_alignment_at_drops(a, q, s, x_drop=15, **P)
        assert len(out) == 3
        for prev, nxt in zip(out, out[1:]):
            assert prev.q_end <= nxt.q_start  # ordered, disjoint
        # each homologous stretch lands inside exactly one piece
        for lo, hi in [(0, 30), (40, 60), (70, 80)]:
            holders = [p for p in out if p.q_start <= lo and hi <= p.q_end]
            assert len(holders) == 1

    def test_all_negative_path_single_piece(self):
        q = encode("A" * 10)
        s = encode("C" * 10)
        a = mk(0, 10, 0, 10, diag(10))
        out = split_alignment_at_drops(a, q, s, x_drop=3, **P)
        assert len(out) == 1  # caller's trim collapses it


class TestColumnScores:
    def test_affine_open_charged_at_run_heads(self):
        q = encode("AACC")
        s = encode("AAGCC")
        path = np.array([OP_DIAG, OP_DIAG, OP_QGAP, OP_DIAG, OP_DIAG], dtype=np.uint8)
        scores = column_scores(path, q, s, 0, 0, **P)
        assert scores.tolist() == [1, 1, -7, 1, 1]
        assert scores.sum() == score_path(path, q, s, 0, 0, **P)

    def test_gap_run_single_open(self):
        q = encode("AC")
        s = encode("ATTC")
        path = np.array([OP_DIAG, OP_QGAP, OP_QGAP, OP_DIAG], dtype=np.uint8)
        scores = column_scores(path, q, s, 0, 0, **P)
        assert scores.tolist() == [1, -7, -2, 1]
