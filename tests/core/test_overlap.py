"""Tests for the paper's Equation 1 (fragment overlap length)."""

import math

import pytest

from repro.blast.params import BlastParams
from repro.blast.scoring import ScoringScheme
from repro.blast.statistics import effective_lengths, evalue, karlin_altschul
from repro.core.overlap import (
    overlap_for_lengths,
    overlap_length,
    shortest_significant_alignment,
)


@pytest.fixture(scope="module")
def ka():
    return karlin_altschul(ScoringScheme(reward=1, penalty=-3))


class TestEquationOne:
    def test_formula_matches_paper(self, ka):
        """L = max(k, ceil(S_lb / p)) with S_lb = ceil(ln(K m n / E) / λ)."""
        params = BlastParams()
        space = effective_lengths(ka, 1_000_000, 122_653_977, 1170)  # Drosophila sizes
        s_lb = shortest_significant_alignment(ka, params, space)
        expected_s = math.ceil(
            math.log(ka.K * space.m_eff * space.n_eff / params.evalue_threshold) / ka.lam
        )
        assert s_lb == expected_s
        L = overlap_length(ka, params, space)
        assert L == max(params.k, math.ceil(s_lb / params.reward))

    def test_paper_scale_overlap_value(self, ka):
        """At the paper's Drosophila scale the overlap is tens of bp —
        tiny against Mbp fragments, which is why intra-query parallelism
        survives (Section III-C's downward pressure)."""
        L = overlap_for_lengths(ka, BlastParams(), 14_500_000, 122_653_977, 1170)
        assert 20 <= L <= 60

    def test_overlap_at_least_k(self, ka):
        """Degenerate tiny search spaces fall back to the k floor."""
        L = overlap_for_lengths(ka, BlastParams(), 30, 100, 1)
        assert L == BlastParams().k

    def test_overlap_grows_with_database(self, ka):
        params = BlastParams()
        small = overlap_for_lengths(ka, params, 100_000, 1_000_000, 10)
        big = overlap_for_lengths(ka, params, 100_000, 100_000_000_000, 10)
        assert big > small

    def test_scale_invariance_under_score_rescaling(self, ka):
        """Doubling every score halves λ and doubles S_lb, and dividing by
        the doubled reward cancels — Eq. 1's overlap (in base pairs) is
        invariant under rescaling the scoring system, as it must be."""
        p1 = BlastParams(reward=1, penalty=-3)
        p2 = BlastParams(reward=2, penalty=-6)
        ka2 = karlin_altschul(ScoringScheme(reward=2, penalty=-6))
        L1 = overlap_for_lengths(ka, p1, 1_000_000, 100_000_000, 100)
        L2 = overlap_for_lengths(ka2, p2, 1_000_000, 100_000_000, 100)
        assert abs(L1 - L2) <= 1  # up to integer rounding of S_lb

    def test_guarantee_property(self, ka):
        """Any alignment passing the E test spans more than L bases, so its
        restriction to one of the two fragments keeps ≥ L/2 > ... enough
        signal; concretely: an ungapped alignment of exactly S_lb score fits
        entirely inside the overlap window."""
        params = BlastParams()
        space = effective_lengths(ka, 1_000_000, 100_000_000, 1000)
        s_lb = shortest_significant_alignment(ka, params, space)
        L = overlap_length(ka, params, space)
        # a perfect match of L bases scores L*reward >= s_lb => passes E
        assert evalue(ka, L * params.reward, space) <= params.evalue_threshold

    def test_validation(self, ka):
        with pytest.raises(ValueError):
            overlap_for_lengths(ka, BlastParams(), 0, 100, 1)
