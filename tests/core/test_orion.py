"""Tests for the top-level OrionSearch API."""

import pytest

from repro.cluster.hardware import CacheModel
from repro.cluster.topology import ClusterSpec
from repro.core.orion import OrionSearch
from tests.conftest import alignment_keys


@pytest.fixture(scope="module")
def orion(small_db):
    return OrionSearch(database=small_db, num_shards=4, fragment_length=9000)


@pytest.fixture(scope="module")
def orion_result(orion, query_with_truth):
    query, _ = query_with_truth
    return orion.run(query, cluster=ClusterSpec(nodes=2, cores_per_node=4))


class TestAccuracy:
    def test_equals_serial(self, orion_result, serial_result):
        """The paper's 100%-accuracy claim on this workload."""
        assert alignment_keys(orion_result.alignments) == alignment_keys(
            serial_result.alignments
        )

    def test_evalues_match_serial(self, orion_result, serial_result):
        for o, s in zip(orion_result.alignments, serial_result.alignments):
            assert o.evalue == pytest.approx(s.evalue)

    def test_sorted_output(self, orion_result):
        evs = [a.evalue for a in orion_result.alignments]
        assert evs == sorted(evs)

    def test_query_id_restored(self, orion_result, query_with_truth):
        query, _ = query_with_truth
        assert all(a.query_id == query.seq_id for a in orion_result.alignments)

    def test_speculation_off_is_lossy_or_equal(self, small_db, query_with_truth, serial_result):
        """Ablation: without speculative extension Orion may miss boundary
        alignments, never gain them."""
        query, _ = query_with_truth
        orion = OrionSearch(
            database=small_db, num_shards=4, fragment_length=9000, speculative=False
        )
        res = orion.run(query)
        assert set(alignment_keys(res.alignments)) <= set(
            alignment_keys(serial_result.alignments)
        )


class TestWorkUnits:
    def test_unit_count(self, orion_result):
        assert orion_result.num_work_units == orion_result.num_fragments * 4

    def test_fragment_metadata(self, orion_result, query_with_truth):
        query, _ = query_with_truth
        # 60 kbp at F=9000, L=overlap: ceil((60000-9000)/(9000-L)) + 1 = 7
        assert orion_result.num_fragments == 7
        assert orion_result.overlap >= 11  # at least k

    def test_records_have_measured_durations(self, orion_result):
        assert all(r.measured_seconds > 0 for r in orion_result.map_records)

    def test_task_durations_cover_phases(self, orion_result):
        durations = orion_result.task_durations()
        expected = (
            orion_result.num_work_units
            + len(orion_result.reduce_seconds)
            + len(orion_result.sort_seconds)
        )
        assert durations.shape[0] == expected


class TestSimulation:
    def test_schedule_attached(self, orion_result):
        assert orion_result.schedule is not None
        assert orion_result.makespan_seconds > 0

    def test_more_cores_never_slower(self, orion, orion_result):
        small = orion.simulate(orion_result, ClusterSpec(nodes=1, cores_per_node=4))
        big = orion.simulate(orion_result, ClusterSpec(nodes=8, cores_per_node=4))
        assert big.makespan <= small.makespan + 1e-9

    def test_hadoop_setup_in_makespan(self, orion, orion_result):
        sched = orion.simulate(orion_result, ClusterSpec(nodes=64, cores_per_node=16))
        # with 1024 slots the job is dominated by the Hadoop constants
        assert sched.makespan >= orion.profile.job_setup_seconds

    def test_cache_model_spares_small_fragments(self, small_db, query_with_truth):
        query, _ = query_with_truth
        cached = OrionSearch(
            database=small_db, num_shards=4, fragment_length=9000,
            cache_model=CacheModel(threshold=20_000.0),
        )
        res = cached.run(query)
        for r in res.map_records:
            assert r.sim_seconds == r.measured_seconds  # fragments below threshold


class TestFragmentLengthResolution:
    def test_explicit_override_wins(self, orion, query_with_truth):
        query, _ = query_with_truth
        res = orion.run(query, fragment_length=30_000)
        assert res.fragment_length == 30_000

    def test_heuristic_when_unset(self, small_db, query_with_truth):
        query, _ = query_with_truth
        orion = OrionSearch(database=small_db, num_shards=4)
        res = orion.run(query)
        assert res.fragment_length > res.overlap

    def test_small_query_single_fragment(self, orion, small_db):
        tiny = small_db.records[0].slice(0, 2000, seq_id="tiny")
        res = orion.run(tiny)
        assert res.num_fragments == 1


class TestRunMany:
    def test_query_set(self, orion, small_db, query_with_truth):
        query, _ = query_with_truth
        second = small_db.records[1].slice(0, 3000, seq_id="q2")
        results = orion.run_many([query, second], cluster=ClusterSpec(nodes=2, cores_per_node=2))
        assert set(results) == {query.seq_id, "q2"}
        combined = orion.simulate_query_set(list(results.values()), ClusterSpec(nodes=2, cores_per_node=2))
        assert combined.makespan > 0


class TestValidation:
    def test_bad_args(self, small_db):
        with pytest.raises(ValueError):
            OrionSearch(database=small_db, num_shards=0)
        with pytest.raises(ValueError):
            OrionSearch(database=small_db, strands="minus")
        with pytest.raises(ValueError):
            OrionSearch(database=small_db, aggregation_mode="magic")
