"""Tests for the top-level OrionSearch API."""

import pytest

from repro.cluster.hardware import CacheModel
from repro.cluster.topology import ClusterSpec
from repro.core.orion import OrionSearch
from tests.conftest import alignment_keys


@pytest.fixture(scope="module")
def orion(small_db):
    return OrionSearch(database=small_db, num_shards=4, fragment_length=9000)


@pytest.fixture(scope="module")
def orion_result(orion, query_with_truth):
    query, _ = query_with_truth
    return orion.run(query, cluster=ClusterSpec(nodes=2, cores_per_node=4))


class TestAccuracy:
    def test_equals_serial(self, orion_result, serial_result):
        """The paper's 100%-accuracy claim on this workload."""
        assert alignment_keys(orion_result.alignments) == alignment_keys(
            serial_result.alignments
        )

    def test_evalues_match_serial(self, orion_result, serial_result):
        for o, s in zip(orion_result.alignments, serial_result.alignments):
            assert o.evalue == pytest.approx(s.evalue)

    def test_sorted_output(self, orion_result):
        evs = [a.evalue for a in orion_result.alignments]
        assert evs == sorted(evs)

    def test_query_id_restored(self, orion_result, query_with_truth):
        query, _ = query_with_truth
        assert all(a.query_id == query.seq_id for a in orion_result.alignments)

    def test_speculation_off_is_lossy_or_equal(self, small_db, query_with_truth, serial_result):
        """Ablation: without speculative extension Orion may miss boundary
        alignments, never gain them."""
        query, _ = query_with_truth
        orion = OrionSearch(
            database=small_db, num_shards=4, fragment_length=9000, speculative=False
        )
        res = orion.run(query)
        assert set(alignment_keys(res.alignments)) <= set(
            alignment_keys(serial_result.alignments)
        )


class TestWorkUnits:
    def test_unit_count(self, orion_result):
        assert orion_result.num_work_units == orion_result.num_fragments * 4

    def test_fragment_metadata(self, orion_result, query_with_truth):
        query, _ = query_with_truth
        # 60 kbp at F=9000, L=overlap: ceil((60000-9000)/(9000-L)) + 1 = 7
        assert orion_result.num_fragments == 7
        assert orion_result.overlap >= 11  # at least k

    def test_records_have_measured_durations(self, orion_result):
        assert all(r.measured_seconds > 0 for r in orion_result.map_records)

    def test_task_durations_cover_phases(self, orion_result):
        durations = orion_result.task_durations()
        expected = (
            orion_result.num_work_units
            + len(orion_result.reduce_seconds)
            + len(orion_result.sort_seconds)
        )
        assert durations.shape[0] == expected


class TestSimulation:
    def test_schedule_attached(self, orion_result):
        assert orion_result.schedule is not None
        assert orion_result.makespan_seconds > 0

    def test_more_cores_never_slower(self, orion, orion_result):
        small = orion.simulate(orion_result, ClusterSpec(nodes=1, cores_per_node=4))
        big = orion.simulate(orion_result, ClusterSpec(nodes=8, cores_per_node=4))
        assert big.makespan <= small.makespan + 1e-9

    def test_hadoop_setup_in_makespan(self, orion, orion_result):
        sched = orion.simulate(orion_result, ClusterSpec(nodes=64, cores_per_node=16))
        # with 1024 slots the job is dominated by the Hadoop constants
        assert sched.makespan >= orion.profile.job_setup_seconds

    def test_cache_model_spares_small_fragments(self, small_db, query_with_truth):
        query, _ = query_with_truth
        cached = OrionSearch(
            database=small_db, num_shards=4, fragment_length=9000,
            cache_model=CacheModel(threshold=20_000.0),
        )
        res = cached.run(query)
        for r in res.map_records:
            assert r.sim_seconds == r.measured_seconds  # fragments below threshold


class TestFragmentLengthResolution:
    def test_explicit_override_wins(self, orion, query_with_truth):
        query, _ = query_with_truth
        res = orion.run(query, fragment_length=30_000)
        assert res.fragment_length == 30_000

    def test_heuristic_when_unset(self, small_db, query_with_truth):
        query, _ = query_with_truth
        orion = OrionSearch(database=small_db, num_shards=4)
        res = orion.run(query)
        assert res.fragment_length > res.overlap

    def test_small_query_single_fragment(self, orion, small_db):
        tiny = small_db.records[0].slice(0, 2000, seq_id="tiny")
        res = orion.run(tiny)
        assert res.num_fragments == 1


class TestRunMany:
    def test_query_set(self, orion, small_db, query_with_truth):
        query, _ = query_with_truth
        second = small_db.records[1].slice(0, 3000, seq_id="q2")
        results = orion.run_many([query, second], cluster=ClusterSpec(nodes=2, cores_per_node=2))
        assert set(results) == {query.seq_id, "q2"}
        combined = orion.simulate_query_set(list(results.values()), ClusterSpec(nodes=2, cores_per_node=2))
        assert combined.makespan > 0

    def test_duplicate_seq_ids_rejected(self, orion, small_db, query_with_truth):
        """Results are keyed by seq_id — a silent dict collision used to
        drop all but the last duplicate; now the set is rejected up front,
        naming the colliding ids."""
        query, _ = query_with_truth
        twin = small_db.records[2].slice(0, 2500, seq_id=query.seq_id)
        other = small_db.records[1].slice(0, 2500, seq_id="q2")
        with pytest.raises(ValueError) as exc:
            orion.run_many([query, other, twin])
        assert query.seq_id in str(exc.value)
        assert "q2" not in str(exc.value)
        assert "duplicate" in str(exc.value)


class TestValidation:
    def test_bad_args(self, small_db):
        with pytest.raises(ValueError):
            OrionSearch(database=small_db, num_shards=0)
        with pytest.raises(ValueError):
            OrionSearch(database=small_db, strands="minus")
        with pytest.raises(ValueError):
            OrionSearch(database=small_db, aggregation_mode="magic")


class TestPersistentPool:
    def _queries(self, small_db, query_with_truth):
        query, _ = query_with_truth
        return [query, small_db.records[1].slice(0, 3000, seq_id="q2")]

    def test_run_many_uses_one_persistent_pool(
        self, small_db, query_with_truth, monkeypatch
    ):
        """The whole query set (MapReduce + sort jobs) must share one
        process pool — pool-per-query startup is the PR-1 bug."""
        from repro.mapreduce import runtime as runtime_mod

        created = []
        real_pool = runtime_mod.ProcessPoolExecutor

        def counting_pool(*args, **kwargs):
            created.append(1)
            return real_pool(*args, **kwargs)

        monkeypatch.setattr(runtime_mod, "ProcessPoolExecutor", counting_pool)
        search = OrionSearch(
            database=small_db, num_shards=4, fragment_length=9000,
            executor="processes", num_workers=2,
        )
        try:
            results = search.run_many(self._queries(small_db, query_with_truth))
            assert len(results) == 2
            assert len(created) == 1
        finally:
            search.close()

    def test_reuse_pool_false_escape_hatch(
        self, small_db, query_with_truth, monkeypatch
    ):
        from repro.mapreduce import runtime as runtime_mod

        created = []
        real_pool = runtime_mod.ProcessPoolExecutor

        def counting_pool(*args, **kwargs):
            created.append(1)
            return real_pool(*args, **kwargs)

        monkeypatch.setattr(runtime_mod, "ProcessPoolExecutor", counting_pool)
        search = OrionSearch(
            database=small_db, num_shards=4, fragment_length=9000,
            executor="processes", num_workers=2, reuse_pool=False,
        )
        try:
            search.run_many(self._queries(small_db, query_with_truth))
            assert len(created) >= 2  # a fresh pool per job, as before
        finally:
            search.close()

    def test_close_releases_segments_and_next_run_rebuilds(
        self, small_db, query_with_truth
    ):
        pytest.importorskip("multiprocessing.shared_memory")
        from repro.mapreduce.shm import segment_exists
        from tests.conftest import alignment_keys as keys

        query, _ = query_with_truth
        search = OrionSearch(
            database=small_db, num_shards=4, fragment_length=9000,
            executor="processes", num_workers=2,
        )
        try:
            r1 = search.run(query)
            assert search._lease is not None
            names = search._shm_handle.segment_names
            search.close()
            assert not any(segment_exists(n) for n in names)
            r2 = search.run(query)  # transparently rebuilds plane + pool
            assert keys(r2.alignments) == keys(r1.alignments)
        finally:
            search.close()

    def test_context_manager_closes(self, small_db, query_with_truth):
        query, _ = query_with_truth
        with OrionSearch(
            database=small_db, num_shards=4, fragment_length=9000,
            executor="processes", num_workers=2,
        ) as search:
            search.run(query)
            pool = search._pool
            assert pool is not None
        assert search._pool is None and search._lease is None
        assert not pool.started


class TestShardScopedCache:
    def test_worker_builds_only_touched_shards(self):
        """A (worker-side) search that maps tasks for one shard must never
        index the other shards' sequences."""
        import pickle

        from repro.core import orion as orion_mod
        from repro.core.fragmenter import fragment_query
        from repro.sequence.generator import make_database

        db = make_database(909, num_sequences=8, mean_length=500, name="lazydb")
        search = OrionSearch(database=db, num_shards=4, fragment_length=None)
        worker = pickle.loads(pickle.dumps(search))  # what a pool worker gets
        assert worker._db_key == search._db_key

        query = db.records[0].slice(0, 400, seq_id="qlazy")
        overlap, space = worker.overlap_for_query(query)
        fragment = fragment_query(query, len(query), overlap)[0]

        store = orion_mod._KMER_STORES.setdefault(worker._db_key, {})
        store.clear()
        worker._map_fragment_shard(query, fragment, worker.shards[0], space)

        shard0_ids = {r.seq_id for r in worker.shards[0].database}
        all_ids = {r.seq_id for r in db}
        assert set(store) == shard0_ids
        assert shard0_ids < all_ids  # the untouched shards exist and are absent

        # Touching a second shard extends the store incrementally.
        worker._map_fragment_shard(query, fragment, worker.shards[1], space)
        shard1_ids = {r.seq_id for r in worker.shards[1].database}
        assert set(store) == shard0_ids | shard1_ids

    def test_store_survives_repickling_for_same_database(self):
        """Two job pickles of the same database resolve to one store — the
        cross-query warmth a persistent worker depends on."""
        import pickle

        from repro.core import orion as orion_mod
        from repro.sequence.generator import make_database

        db = make_database(910, num_sequences=4, mean_length=400, name="warmdb")
        s1 = pickle.loads(pickle.dumps(OrionSearch(database=db, num_shards=2)))
        s2 = pickle.loads(pickle.dumps(OrionSearch(database=db, num_shards=2)))
        assert s1._db_key == s2._db_key
        orion_mod._KMER_STORES.pop(s1._db_key, None)
        first = s1._kmer_cache_for_shard(s1.shards[0])
        second = s2._kmer_cache_for_shard(s2.shards[0])
        assert first is second  # the module-level store itself
