"""Tests for the parallel sample-sort of results."""

import numpy as np
import pytest

from repro.blast.hsp import Alignment
from repro.core.sortmr import choose_splitters, parallel_sort_alignments


def _aln(evalue, score, subject="s"):
    return Alignment(
        query_id="q", subject_id=subject, q_start=0, q_end=10, s_start=0, s_end=10,
        score=score, evalue=evalue, bits=float(score),
    )


def random_alignments(n, seed=0):
    rng = np.random.default_rng(seed)
    return [
        _aln(float(rng.uniform(1e-30, 10)), int(rng.integers(10, 500)), f"s{int(rng.integers(5))}")
        for _ in range(n)
    ]


class TestParallelSort:
    @pytest.mark.parametrize("num_tasks", [1, 2, 4, 7])
    def test_equals_global_sort(self, num_tasks):
        alns = random_alignments(100)
        out, durations = parallel_sort_alignments(alns, num_tasks=num_tasks)
        expected = sorted(alns, key=Alignment.sort_key)
        assert [a.sort_key() for a in out] == [a.sort_key() for a in expected]
        assert len(durations) == num_tasks

    def test_empty(self):
        out, durations = parallel_sort_alignments([])
        assert out == [] and durations == []

    def test_fewer_items_than_tasks(self):
        alns = random_alignments(3)
        out, durations = parallel_sort_alignments(alns, num_tasks=10)
        assert len(out) == 3
        assert len(durations) <= 3

    def test_duplicate_evalues_stable(self):
        alns = [_aln(1e-5, 50, "a"), _aln(1e-5, 50, "b"), _aln(1e-5, 50, "a")]
        out, _ = parallel_sort_alignments(alns, num_tasks=2)
        assert len(out) == 3
        keys = [a.sort_key() for a in out]
        assert keys == sorted(keys)

    def test_deterministic(self):
        alns = random_alignments(50, seed=3)
        a, _ = parallel_sort_alignments(alns, num_tasks=3)
        b, _ = parallel_sort_alignments(alns, num_tasks=3)
        assert [x.sort_key() for x in a] == [x.sort_key() for x in b]

    def test_skewed_scores_still_sort(self):
        """Massive key skew (one dominant score) must neither crash nor leave
        items unsorted once duplicate splitters are removed."""
        alns = [_aln(1e-5, 50, "hot")] * 40 + random_alignments(10, seed=8)
        out, durations = parallel_sort_alignments(alns, num_tasks=6)
        keys = [a.sort_key() for a in out]
        assert keys == sorted(keys)
        assert len(out) == 50
        # Partition count shrinks with the deduped splitters.
        assert 1 <= len(durations) <= 6

    @pytest.mark.parametrize("executor", ["threads", "processes"])
    def test_executor_backends_match_serial(self, executor):
        alns = random_alignments(60, seed=5)
        serial, _ = parallel_sort_alignments(alns, num_tasks=3)
        other, _ = parallel_sort_alignments(alns, num_tasks=3, executor=executor)
        assert [a.sort_key() for a in other] == [a.sort_key() for a in serial]


class TestChooseSplitters:
    def test_count(self):
        keys = [(float(i), 0) for i in range(100)]
        sp = choose_splitters(keys, 4)
        assert len(sp) == 3
        assert sp == sorted(sp)

    def test_skewed_keys_no_duplicate_splitters(self):
        """Regression: a heavily skewed distribution used to yield the same
        splitter at several quantiles — a duplicated splitter bounds an empty
        key range, i.e. a reduce partition that can never receive data."""
        keys = [(1.0, 7)] * 95 + [(float(i), 0) for i in range(2, 7)]
        sp = choose_splitters(keys, 8)
        assert len(set(sp)) == len(sp)
        assert sp == sorted(sp)
        assert len(sp) <= 7

    def test_all_identical_keys_collapse(self):
        sp = choose_splitters([(3.5, 1)] * 50, 6)
        assert len(sp) <= 1

    def test_single_partition_no_splitters(self):
        assert choose_splitters([(1.0,)], 1) == []

    def test_empty_keys(self):
        assert choose_splitters([], 4) == []

    def test_validation(self):
        with pytest.raises(ValueError):
            choose_splitters([(1.0,)], 0)
