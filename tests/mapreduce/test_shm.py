"""Shared-memory data plane + persistent WorkerPool tests.

The leak tests assert the lifecycle invariant directly against ``/dev/shm``:
whatever happens — normal release, forgotten release at interpreter exit,
or a worker process crashing mid-task — no orphan segment may survive.
"""

import os
import subprocess
import sys
import warnings

import numpy as np
import pytest

from repro.blast.lookup import sorted_kmers
from repro.mapreduce import runtime as runtime_mod
from repro.mapreduce import shm as shm_mod
from repro.mapreduce.job import MapReduceJob
from repro.mapreduce.runtime import SerialExecutor, WorkerPool
from repro.mapreduce.shm import (
    SharedDatabasePlane,
    SharedMemoryUnavailable,
    attach_cached_view,
    attach_view,
    create_segment,
    destroy_segment,
    detach_cached_views,
    publish_bytes,
    read_bytes,
    segment_exists,
)
from repro.mapreduce.types import InputSplit
from repro.sequence.generator import make_database

pytestmark = pytest.mark.skipif(
    not shm_mod.HAVE_SHARED_MEMORY, reason="platform lacks POSIX shared memory"
)

K = 9


def _psm_segments():
    """Names of live POSIX shm segments (Linux probe; empty set elsewhere)."""
    try:
        return {n for n in os.listdir("/dev/shm") if n.startswith("psm_")}
    except FileNotFoundError:  # pragma: no cover - non-Linux
        return set()


@pytest.fixture
def db():
    return make_database(101, num_sequences=5, mean_length=400)


# Module-level task callables: picklable under fork and spawn alike.
def _mod5_mapper(split):
    for x in split.payload:
        yield x % 5, x


def _sum_reducer(key, values):
    yield key, sum(values)


class _CrashInWorkerMapper:
    """Crashes the hosting process — but only when it is NOT the parent.

    The parent pid travels with the pickle, so the post-crash serial
    fallback (which runs in the parent) completes normally while every
    pool worker dies mid-task.
    """

    def __init__(self, parent_pid):
        self.parent_pid = parent_pid

    def __call__(self, split):
        if os.getpid() != self.parent_pid:
            os._exit(13)
        yield from _mod5_mapper(split)


def make_job(mapper=_mod5_mapper, n_red=2):
    return MapReduceJob(mapper=mapper, reducer=_sum_reducer, num_reducers=n_red, name="t")


# Worker-side observable for the setup-runs-once test: the offset a setup
# run installs is baked into every mapped value, so a re-run of setup in a
# worker shows up as shifted sums in that worker's output.
_POOL_SETUP = {"offset": 0}


def _accumulating_setup():
    _POOL_SETUP["offset"] += 1000


def _setup_offset_mapper(split):
    for x in split.payload:
        yield x % 5, x + _POOL_SETUP["offset"]


def make_splits(n=6, width=10):
    return [
        InputSplit(index=i, payload=list(range(i * width, (i + 1) * width)))
        for i in range(n)
    ]


# --------------------------------------------------------------------------- #
# segment helpers
# --------------------------------------------------------------------------- #


class TestSegments:
    def test_publish_read_roundtrip(self):
        data = b"orion shared bytes"
        seg = publish_bytes(data)
        try:
            assert read_bytes(seg.name, len(data)) == data
            assert segment_exists(seg.name)
        finally:
            destroy_segment(seg)
        assert not segment_exists(seg.name)

    def test_destroy_is_idempotent(self):
        seg = create_segment(16)
        destroy_segment(seg)
        destroy_segment(seg)  # second unlink: FileNotFoundError swallowed
        assert not segment_exists(seg.name)

    def test_failed_create_does_not_leak(self):
        before = _psm_segments()
        with pytest.raises(ValueError):
            # data larger than the segment: the copy-in fails after creation
            # and the paired finally must close+unlink.
            create_segment(4, b"way more than four bytes")
        assert _psm_segments() - before == set()


# --------------------------------------------------------------------------- #
# the database plane
# --------------------------------------------------------------------------- #


class TestPlane:
    def test_view_roundtrips_codes_and_kmers(self, db):
        with SharedDatabasePlane.create(db, K) as plane:
            view = attach_view(plane.handle)
            rebuilt = view.database()
            assert rebuilt.name == db.name
            for rec, back in zip(db, rebuilt):
                assert back.seq_id == rec.seq_id
                assert np.array_equal(back.codes, rec.codes)
                keys, pos = sorted_kmers(rec.codes, K)
                vkeys, vpos = view.sorted_kmers(rec.seq_id)
                assert np.array_equal(vkeys, keys)
                assert np.array_equal(vpos, pos)
            view.close()

    def test_views_are_read_only(self, db):
        with SharedDatabasePlane.create(db, K) as plane:
            view = attach_view(plane.handle)
            codes = view.codes(db.records[0].seq_id)
            with pytest.raises(ValueError):
                codes[0] = 1
            view.close()

    def test_refcount_unlinks_on_last_release(self, db):
        plane = SharedDatabasePlane.create(db, K)
        names = plane.handle.segment_names
        plane.acquire()
        plane.release()
        assert all(segment_exists(n) for n in names)
        assert not plane.destroyed
        plane.release()
        assert plane.destroyed
        assert not any(segment_exists(n) for n in names)

    def test_acquire_after_destroy_raises(self, db):
        plane = SharedDatabasePlane.create(db, K)
        plane.destroy()
        with pytest.raises(SharedMemoryUnavailable):
            plane.acquire()

    def test_over_release_raises_instead_of_going_negative(self, db):
        """Releasing more times than acquired must raise, not silently drive
        the refcount negative (a double-release bug in one consumer would
        otherwise destroy a plane other consumers still hold)."""
        plane = SharedDatabasePlane.create(db, K)
        plane.release()  # balances create; destroys the plane
        assert plane.destroyed
        with pytest.raises(RuntimeError, match="over-released"):
            plane.release()

    def test_handle_pickles_small(self, db):
        import pickle

        plane = SharedDatabasePlane.create(db, K)
        try:
            blob = pickle.dumps(plane.handle)
            # The whole point: the handle is metadata, not the database.
            assert len(blob) < 4096
            assert pickle.loads(blob) == plane.handle
        finally:
            plane.release()

    def test_cached_view_attaches_once_per_process(self, db):
        plane = SharedDatabasePlane.create(db, K)
        try:
            v1 = attach_cached_view(plane.handle)
            v2 = attach_cached_view(plane.handle)
            assert v1 is v2
        finally:
            detach_cached_views()
            plane.release()

    def test_cleanup_hook_reclaims_unreleased_planes(self, db):
        plane = SharedDatabasePlane.create(db, K)
        names = plane.handle.segment_names
        assert plane.handle.plane_id in shm_mod._LIVE_PLANES
        shm_mod._cleanup_live_planes()
        assert plane.destroyed
        assert not any(segment_exists(n) for n in names)
        assert plane.handle.plane_id not in shm_mod._LIVE_PLANES


class TestPlaneSketches:
    """The optional fourth segment: per-sequence bottom-k sketches."""

    def test_view_sketches_match_in_process(self, db):
        from repro.sketch import KmerSketch

        with SharedDatabasePlane.create(db, K) as plane:
            assert plane.handle.has_sketches
            view = attach_view(plane.handle)
            assert view.has_sketches
            for rec in db:
                got = view.sequence_sketch(rec.seq_id)
                ref = KmerSketch.from_codes(rec.codes, K, plane.handle.sketch_size)
                assert np.array_equal(got.hashes, ref.hashes)
                assert got.threshold == ref.threshold
            view.close()

    def test_sketch_segment_in_segment_names(self, db):
        with SharedDatabasePlane.create(db, K) as plane:
            assert plane.handle.sketch_segment is not None
            assert plane.handle.sketch_segment in plane.handle.segment_names
            assert len(plane.handle.segment_names) == 4

    def test_sketch_size_zero_omits_segment(self, db):
        with SharedDatabasePlane.create(db, K, sketch_size=0) as plane:
            assert not plane.handle.has_sketches
            assert plane.handle.sketch_segment is None
            assert len(plane.handle.segment_names) == 3
            view = attach_view(plane.handle)
            assert not view.has_sketches
            with pytest.raises(SharedMemoryUnavailable):
                view.sequence_sketch(next(iter(db)).seq_id)
            view.close()

    def test_handle_with_sketches_pickles(self, db):
        import pickle

        with SharedDatabasePlane.create(db, K) as plane:
            back = pickle.loads(pickle.dumps(plane.handle))
            assert back == plane.handle
            assert back.has_sketches
            assert back.sketch_thresholds == plane.handle.sketch_thresholds

    def test_old_style_handle_defaults_to_no_sketches(self, db):
        """Handles pickled before the sketch segment existed (or built
        without one) must keep working and report no sketches."""
        handle = shm_mod.SharedDatabaseHandle(
            plane_id="old",
            db_name=db.name,
            k=K,
            seq_ids=("a",),
            descriptions=("",),
            codes_segment="x",
            codes_offsets=(0, 1),
            kmer_keys_segment="y",
            kmer_positions_segment="z",
            kmer_offsets=(0, 0),
        )
        assert not handle.has_sketches
        assert len(handle.segment_names) == 3

    def test_no_segments_leak(self, db):
        before = _psm_segments()
        plane = SharedDatabasePlane.create(db, K)
        assert len(_psm_segments() - before) == 4
        plane.release()
        assert _psm_segments() <= before


class TestLeakOnExit:
    def test_no_orphan_segments_after_normal_interpreter_exit(self, db, tmp_path):
        """A script that builds a plane and *forgets* to release it must
        still leave /dev/shm clean: the atexit registry is the backstop."""
        script = tmp_path / "leaky.py"
        script.write_text(
            "import sys\n"
            "from repro.mapreduce.shm import SharedDatabasePlane\n"
            "from repro.sequence.generator import make_database\n"
            "db = make_database(7, num_sequences=3, mean_length=300)\n"
            "plane = SharedDatabasePlane.create(db, 9)\n"
            "print('\\n'.join(plane.handle.segment_names))\n"
            "# exits without release/destroy\n"
        )
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(shm_mod.__file__), "..", "..")
        env["PYTHONPATH"] = os.path.abspath(src)
        out = subprocess.run(
            [sys.executable, str(script)],
            capture_output=True, text=True, env=env, check=True,
        )
        names = [n for n in out.stdout.splitlines() if n]
        assert len(names) == 4  # codes + kmer keys + kmer positions + sketches
        assert not any(segment_exists(n) for n in names)
        assert "Traceback" not in out.stderr


# --------------------------------------------------------------------------- #
# persistent WorkerPool
# --------------------------------------------------------------------------- #


def _expected_totals(n=6, width=10):
    expected = {}
    for x in range(n * width):
        expected[x % 5] = expected.get(x % 5, 0) + x
    return expected


class TestWorkerPool:
    def test_matches_serial_and_reuses_one_pool(self, monkeypatch):
        created = []
        real_pool = runtime_mod.ProcessPoolExecutor

        def counting_pool(*args, **kwargs):
            created.append(1)
            return real_pool(*args, **kwargs)

        monkeypatch.setattr(runtime_mod, "ProcessPoolExecutor", counting_pool)
        serial = SerialExecutor().run(make_job(), make_splits())
        with WorkerPool(max_workers=2) as pool:
            r1 = pool.run(make_job(), make_splits())
            r2 = pool.run(make_job(), make_splits())
            assert pool.started
        assert len(created) == 1
        assert r1.outputs == serial.outputs == r2.outputs
        assert all(r.executor == "processes" for r in r1.records)
        assert not any(r.simulator_safe for r in r1.records)

    def test_job_blob_segment_is_destroyed_after_run(self, monkeypatch):
        published = []
        real_publish = shm_mod.publish_bytes

        def spying_publish(data):
            seg = real_publish(data)
            published.append(seg.name)
            return seg

        monkeypatch.setattr(shm_mod, "publish_bytes", spying_publish)
        with WorkerPool(max_workers=2) as pool:
            pool.run(make_job(), make_splits())
        assert published, "job blob was not shipped via shared memory"
        assert not any(segment_exists(n) for n in published)

    def test_unpicklable_job_falls_back_to_serial(self):
        job = MapReduceJob(
            mapper=lambda s: [(0, x) for x in s.payload],  # closure: unpicklable
            reducer=_sum_reducer,
            num_reducers=2,
            name="t",
        )
        with WorkerPool(max_workers=2) as pool:
            with pytest.warns(RuntimeWarning, match="falling back to serial"):
                result = pool.run(job, make_splits())
        totals = dict(kv for out in result.outputs for kv in out)
        assert totals == {0: sum(range(60))}
        assert all(r.executor == "serial" for r in result.records)

    def test_single_worker_runs_serial_without_pool(self):
        pool = WorkerPool(max_workers=1)
        result = pool.run(make_job(), make_splits())
        assert not pool.started
        assert all(r.executor == "serial" for r in result.records)

    @pytest.mark.parametrize("start_method", ["fork", "spawn"])
    def test_worker_crash_recovers_and_leaks_nothing(self, start_method):
        """An injected worker crash must (a) fall back to a correct serial
        run, (b) discard the poisoned pool, and (c) leave /dev/shm clean —
        under both fork and spawn start methods."""
        before = _psm_segments()
        job = make_job(mapper=_CrashInWorkerMapper(os.getpid()))
        pool = WorkerPool(max_workers=2, start_method=start_method)
        try:
            with pytest.warns(RuntimeWarning, match="falling back to serial"):
                result = pool.run(job, make_splits())
            assert not pool.started, "crashed pool must be discarded"
            totals = dict(kv for out in result.outputs for kv in out)
            assert totals == _expected_totals()
            # The pool rebuilds transparently on the next run.
            healthy = pool.run(make_job(), make_splits())
            assert all(r.executor == "processes" for r in healthy.records)
        finally:
            pool.shutdown()
        assert _psm_segments() - before == set()

    def test_shutdown_is_idempotent_and_rebuildable(self):
        pool = WorkerPool(max_workers=2)
        r1 = pool.run(make_job(), make_splits())
        pool.shutdown()
        pool.shutdown()
        assert not pool.started
        r2 = pool.run(make_job(), make_splits())
        pool.shutdown()
        assert r1.outputs == r2.outputs

    def test_rejects_nonpositive_workers(self):
        with pytest.raises(ValueError):
            WorkerPool(max_workers=0)

    def test_repeated_job_runs_setup_once_per_worker(self):
        """Re-submitting a pickled-identical job must hit the per-worker job
        cache, not re-publish under a fresh key and re-run ``setup``.

        The setup hook shifts every mapped value by 1000, so a second setup
        run in any worker would show up as inflated sums on the re-run.
        """
        _POOL_SETUP["offset"] = 0
        job = MapReduceJob(
            mapper=_setup_offset_mapper,
            reducer=_sum_reducer,
            num_reducers=2,
            setup=_accumulating_setup,
            name="t",
        )
        with WorkerPool(max_workers=2) as pool:
            r1 = pool.run(job, make_splits())
            r2 = pool.run(job, make_splits())
        totals = dict(kv for out in r1.outputs for kv in out)
        # 60 inputs, each shifted by exactly one setup run's 1000.
        assert sum(totals.values()) == sum(range(60)) + 1000 * 60
        assert r1.outputs == r2.outputs
        assert _POOL_SETUP["offset"] == 0, "setup must run in workers only"


# --------------------------------------------------------------------------- #
# streaming-shuffle spill sets
# --------------------------------------------------------------------------- #


class TestSpillSet:
    def test_names_are_deterministic_and_driver_owned(self):
        with shm_mod.SpillSet(3) as spills:
            assert spills.name_for(2) == f"{spills.set_id}_00002_a01"
            assert spills.name_for(2, attempt=3) == f"{spills.set_id}_00002_a03"
            # Minting records every name handed out, exactly once.
            assert spills.names == (
                f"{spills.set_id}_00002_a01",
                f"{spills.set_id}_00002_a03",
            )
            assert spills.set_id.startswith(f"orionspill_{os.getpid()}_")
        # Distinct sets in one process must never collide.
        s1, s2 = shm_mod.SpillSet(1), shm_mod.SpillSet(1)
        try:
            assert s1.name_for(0) != s2.name_for(0)
        finally:
            s1.release()
            s2.release()

    def test_attempts_get_distinct_names_and_individual_sweeps(self):
        """A retried map task's new attempt never collides with the old
        attempt's segment, and the dead attempt is swept without touching
        the winner's run."""
        spills = shm_mod.SpillSet(1)
        try:
            first = spills.name_for(0, attempt=1)
            second = spills.name_for(0, attempt=2)
            assert first != second
            create_segment(4, b"dead", name=first).close()
            create_segment(4, b"live", name=second).close()
            assert spills.sweep(0, attempt=1) is True
            assert not segment_exists(first)
            assert segment_exists(second)
            assert spills.sweep(0, attempt=1) is False  # idempotent
        finally:
            spills.release()
        assert not segment_exists(second)

    def test_release_sweeps_created_segments_and_is_idempotent(self):
        spills = shm_mod.SpillSet(3)
        # Simulate two workers spilling (one name intentionally minted but
        # never created: the inline-fallback / crashed-worker case).
        names = [spills.name_for(i) for i in range(3)]
        for i in (0, 2):
            seg = create_segment(8, b"run-data", name=names[i])
            seg.close()
        assert segment_exists(names[0])
        spills.release()
        assert not any(segment_exists(n) for n in names)
        spills.release()  # second release: no-op, no error

    def test_read_segment_slice_pulls_one_run(self):
        spills = shm_mod.SpillSet(1)
        try:
            name = spills.name_for(0)
            create_segment(12, b"aaaabbbbcccc", name=name).close()
            assert shm_mod.read_segment_slice(name, 4, 4) == b"bbbb"
            assert shm_mod.read_segment_slice(name, 0, 0) == b""
        finally:
            spills.release()

    def test_cleanup_hook_reclaims_unreleased_sets(self):
        spills = shm_mod.SpillSet(2)
        leftover = spills.name_for(1)
        create_segment(4, b"left", name=leftover).close()
        assert spills.set_id in shm_mod._LIVE_SPILL_SETS
        shm_mod._cleanup_live_spill_sets()
        assert spills.set_id not in shm_mod._LIVE_SPILL_SETS
        assert not segment_exists(leftover)

    def test_sweep_segment_reports_removal(self):
        spills = shm_mod.SpillSet(1)
        try:
            name = spills.name_for(0)
            assert shm_mod.sweep_segment(name) is False
            create_segment(4, b"data", name=name).close()
            assert shm_mod.sweep_segment(name) is True
            assert shm_mod.sweep_segment(name) is False
        finally:
            spills.release()
