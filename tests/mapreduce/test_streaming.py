"""Tests for Hadoop-streaming emulation."""

import pytest

from repro.mapreduce.streaming import run_streaming_job


def upper_mapper(line):
    yield f"{line.split(',')[0]}\t{line.split(',')[1].upper()}"


def join_reducer(key, values):
    yield f"{key}:{'|'.join(values)}"


class TestRunStreamingJob:
    def test_basic(self):
        lines = ["a,x", "b,y", "a,z"]
        out, result = run_streaming_job(lines, upper_mapper, join_reducer)
        assert sorted(out) == ["a:X|Z", "b:Y"]
        assert len(result.map_records()) == 3

    def test_lines_per_split(self):
        lines = ["a,x", "b,y", "a,z", "c,w"]
        _, result = run_streaming_job(
            lines, upper_mapper, join_reducer, lines_per_split=2
        )
        assert len(result.map_records()) == 2

    def test_keys_without_tab(self):
        def mapper(line):
            yield line  # whole line is the key, empty value

        def reducer(key, values):
            yield f"{key}={len(values)}"

        out, _ = run_streaming_job(["k", "k", "j"], mapper, reducer)
        assert sorted(out) == ["j=1", "k=2"]

    def test_empty_lines_skipped_whitespace_lines_kept(self):
        # Hadoop streaming delivers whitespace-only lines to the mapper;
        # only genuinely empty lines (bare newlines) are dropped.
        seen = []

        def mapper(line):
            seen.append(line)
            yield f"n\t{line!r}"

        def reducer(key, values):
            yield from values

        out, _ = run_streaming_job(["", "a,x", "  ", "\n", "\t"], mapper, reducer)
        assert seen == ["a,x", "  ", "\t"]
        assert sorted(out) == sorted(["'a,x'", "'  '", "'\\t'"])

    def test_whitespace_lines_round_trip(self):
        # A whitespace-only record must survive map → shuffle → reduce and
        # come back out intact, like any other record.
        def mapper(line):
            yield f"count\t{line}"

        def reducer(key, values):
            yield f"{key}={len(values)}"
            for v in values:
                yield v

        out, result = run_streaming_job(["  ", " \t "], mapper, reducer)
        assert out == ["count=2", "  ", " \t "]
        assert len(result.map_records()) == 2

    def test_multiple_reducers_cover_all_keys(self):
        lines = [f"k{i},v" for i in range(20)]
        out, result = run_streaming_job(
            lines, upper_mapper, join_reducer, num_reducers=4
        )
        assert len(out) == 20
        assert len(result.reduce_records()) == 4

    def test_bad_lines_per_split(self):
        with pytest.raises(ValueError):
            run_streaming_job(["x"], upper_mapper, join_reducer, lines_per_split=0)
