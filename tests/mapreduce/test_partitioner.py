"""Tests for hash and range partitioners."""

import pytest

from repro.mapreduce.partitioner import hash_partitioner, make_range_partitioner


class TestHashPartitioner:
    def test_deterministic_across_calls(self):
        assert hash_partitioner("subject.42", 8) == hash_partitioner("subject.42", 8)

    def test_in_range(self):
        for key in ["a", "b", ("s", 1), 42, 3.14, b"bytes"]:
            assert 0 <= hash_partitioner(key, 5) < 5

    def test_tuple_keys(self):
        assert hash_partitioner(("s1", 1), 4) != hash_partitioner(("s1", -1), 4) or True
        # determinism is the contract; distinctness is probabilistic
        assert hash_partitioner(("s1", 1), 4) == hash_partitioner(("s1", 1), 4)

    def test_spread(self):
        """CRC over 1000 keys should touch every partition."""
        seen = {hash_partitioner(f"key{i}", 8) for i in range(1000)}
        assert seen == set(range(8))

    def test_bad_partition_count(self):
        with pytest.raises(ValueError):
            hash_partitioner("x", 0)

    def test_unsupported_key_type(self):
        with pytest.raises(TypeError):
            hash_partitioner(["list"], 4)


class TestRangePartitioner:
    def test_ranges(self):
        part = make_range_partitioner([10, 20])
        assert part(5, 3) == 0
        assert part(10, 3) == 1
        assert part(15, 3) == 1
        assert part(25, 3) == 2

    def test_tuple_splitters(self):
        part = make_range_partitioner([(1.0, "m")])
        assert part((0.5, "a"), 2) == 0
        assert part((2.0, "z"), 2) == 1

    def test_wrong_partition_count_rejected(self):
        part = make_range_partitioner([10])
        with pytest.raises(ValueError, match="built for 2"):
            part(5, 3)

    def test_unsorted_splitters_rejected(self):
        with pytest.raises(ValueError):
            make_range_partitioner([20, 10])

    def test_empty_splitters_single_partition(self):
        part = make_range_partitioner([])
        assert part("anything", 1) == 0

    def test_globally_sorted_property(self):
        """Concatenating sorted partitions yields the fully sorted list."""
        import numpy as np

        rng = np.random.default_rng(0)
        keys = rng.integers(0, 1000, size=500).tolist()
        splitters = sorted(keys)[100::150][:3]
        part = make_range_partitioner(splitters)
        n = len(splitters) + 1
        buckets = [[] for _ in range(n)]
        for k in keys:
            buckets[part(k, n)].append(k)
        merged = [k for b in buckets for k in sorted(b)]
        assert merged == sorted(keys)
