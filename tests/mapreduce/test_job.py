"""Tests for MapReduce job definition and shuffle."""

import pytest

from repro.mapreduce.job import MapReduceJob, group_by_key
from repro.mapreduce.types import InputSplit


def word_mapper(split):
    for word in split.payload:
        yield word, 1


def count_reducer(key, values):
    yield key, sum(values)


class TestGroupByKey:
    def test_groups_and_sorts_keys(self):
        groups = group_by_key([("b", 1), ("a", 2), ("b", 3)])
        assert groups == [("a", [2]), ("b", [1, 3])]

    def test_value_order_preserved(self):
        groups = group_by_key([("k", 3), ("k", 1), ("k", 2)])
        assert groups[0][1] == [3, 1, 2]

    def test_empty(self):
        assert group_by_key([]) == []


class TestJobValidation:
    def test_reducer_count_positive(self):
        with pytest.raises(ValueError):
            MapReduceJob(mapper=word_mapper, reducer=count_reducer, num_reducers=0)

    def test_callables_required(self):
        with pytest.raises(TypeError):
            MapReduceJob(mapper="not-callable", reducer=count_reducer)


class TestShuffle:
    def _job(self, n_red=3):
        return MapReduceJob(mapper=word_mapper, reducer=count_reducer, num_reducers=n_red)

    def test_partition_disjoint_and_complete(self):
        job = self._job()
        outputs = [[("a", 1), ("b", 1)], [("c", 1), ("a", 1)]]
        partitions = job.shuffle(outputs)
        seen = {}
        for part in partitions:
            for key, values in part:
                assert key not in seen
                seen[key] = values
        assert set(seen) == {"a", "b", "c"}
        assert seen["a"] == [1, 1]

    def test_same_key_same_partition(self):
        job = self._job()
        p1 = job.shuffle([[("x", 1)]])
        p2 = job.shuffle([[("x", 2)]])
        idx1 = next(i for i, part in enumerate(p1) if part)
        idx2 = next(i for i, part in enumerate(p2) if part)
        assert idx1 == idx2

    def test_bad_partitioner_rejected(self):
        job = MapReduceJob(
            mapper=word_mapper,
            reducer=count_reducer,
            num_reducers=2,
            partitioner=lambda k, n: 7,
        )
        with pytest.raises(ValueError, match="partitioner returned"):
            job.shuffle([[("a", 1)]])


class TestCombiner:
    def test_combiner_pre_aggregates(self):
        def combiner(key, values):
            yield sum(values)

        job = MapReduceJob(
            mapper=word_mapper, reducer=count_reducer, combiner=combiner
        )
        pairs = job.run_map_task(InputSplit(0, ["a", "a", "b"]))
        assert sorted(pairs) == [("a", 2), ("b", 1)]

    def test_no_combiner_passthrough(self):
        job = MapReduceJob(mapper=word_mapper, reducer=count_reducer)
        pairs = job.run_map_task(InputSplit(0, ["a", "a"]))
        assert pairs == [("a", 1), ("a", 1)]


class TestReduceTask:
    def test_runs_reducer_per_key(self):
        job = MapReduceJob(mapper=word_mapper, reducer=count_reducer)
        out = job.run_reduce_task([("a", [1, 1]), ("b", [1])])
        assert out == [("a", 2), ("b", 1)]
