"""Tests for the HDFS-like block store."""

import pytest

from repro.mapreduce.storage import BlockStore


class TestBlockStore:
    def test_write_read_round_trip(self):
        store = BlockStore()
        store.write_text("dir/file.txt", "hello world")
        assert store.read_text("dir/file.txt") == "hello world"

    def test_bytes_round_trip(self):
        store = BlockStore()
        store.write_bytes("b.bin", b"\x00\x01\x02")
        assert store.read_bytes("b.bin") == b"\x00\x01\x02"

    def test_block_count(self):
        store = BlockStore(block_size=10)
        meta = store.write_bytes("x", b"a" * 25)
        assert meta.num_blocks == 3
        assert meta.size == 25

    def test_empty_file_one_block(self):
        store = BlockStore(block_size=10)
        assert store.write_bytes("e", b"").num_blocks == 1

    def test_replication_capped_at_nodes(self):
        store = BlockStore(num_nodes=2, replication=3)
        meta = store.write_bytes("x", b"data")
        assert all(len(nodes) == 2 for nodes in meta.block_locations)

    def test_block_placement_round_robin(self):
        store = BlockStore(num_nodes=4, replication=1, block_size=1)
        meta = store.write_bytes("x", b"abcd")
        firsts = [nodes[0] for nodes in meta.block_locations]
        assert firsts == [0, 1, 2, 3]

    def test_missing_file(self):
        store = BlockStore()
        with pytest.raises(FileNotFoundError):
            store.read_bytes("nope")
        with pytest.raises(FileNotFoundError):
            store.stat("nope")

    def test_delete(self):
        store = BlockStore()
        store.write_text("x", "y")
        store.delete("x")
        assert not store.exists("x")
        with pytest.raises(FileNotFoundError):
            store.delete("x")

    def test_listdir(self):
        store = BlockStore()
        store.write_text("shards/000", "a")
        store.write_text("shards/001", "b")
        store.write_text("other/z", "c")
        assert store.listdir("shards") == ["shards/000", "shards/001"]

    def test_overwrite_replaces(self):
        store = BlockStore()
        store.write_text("x", "old")
        store.write_text("x", "new")
        assert store.read_text("x") == "new"

    def test_totals(self):
        store = BlockStore(block_size=4)
        store.write_bytes("a", b"12345678")
        store.write_bytes("b", b"12")
        assert store.total_bytes == 10
        assert store.total_blocks == 3

    def test_invalid_paths(self):
        store = BlockStore()
        with pytest.raises(ValueError):
            store.write_text("", "x")
        with pytest.raises(ValueError):
            store.write_text("dir/", "x")

    def test_locality_nodes(self):
        store = BlockStore(num_nodes=3, replication=2)
        store.write_bytes("x", b"abc")
        nodes = store.locality_nodes("x")
        assert len(nodes) == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            BlockStore(num_nodes=0)
        with pytest.raises(ValueError):
            BlockStore(block_size=0)
