"""Fault-tolerance tests: injector, retry policy, scheduler, fault matrix.

The matrix at the bottom is the load-bearing part: every fault kind is
injected into every phase under every start method and shuffle, and the job
must recover *in place* — byte-identical output, no whole-job serial
fallback, the targeted task's retry visible in its TaskRecord, and nothing
left behind in ``/dev/shm``.
"""

import os
import pickle
import time
import warnings
from concurrent.futures import BrokenExecutor, Future, ThreadPoolExecutor

import pytest

from repro.mapreduce.faults import (
    ANY,
    FaultInjector,
    FaultSpec,
    RetryPolicy,
    TaskFailedError,
    TransientTaskError,
)
from repro.mapreduce.job import MapReduceJob
from repro.mapreduce.runtime import ProcessExecutor, SerialExecutor, WorkerPool
from repro.mapreduce.scheduler import TaskScheduler
from repro.mapreduce.types import TaskKind
from tests.mapreduce.test_runtime import (
    _sum_reducer,
    make_job,
    make_splits,
)


def _shm_segments():
    """Live repro-owned shared-memory segments (Linux probe; empty elsewhere)."""
    try:
        return {
            n
            for n in os.listdir("/dev/shm")
            if n.startswith("orionspill_") or n.startswith("psm_")
        }
    except FileNotFoundError:  # pragma: no cover - non-Linux
        return set()


def fast_policy(**overrides):
    """A RetryPolicy whose backoff never wall-clock waits in tests."""
    overrides.setdefault("backoff_base", 0.001)
    overrides.setdefault("backoff_jitter", 0.0)
    return RetryPolicy(**overrides)


def _poison_mapper(split):
    raise ValueError(f"poisoned split {split.index}")
    yield  # pragma: no cover - makes this a generator function


# --------------------------------------------------------------------------- #
# FaultSpec / FaultInjector
# --------------------------------------------------------------------------- #


class TestFaultSpec:
    def test_validates_phase_and_kind(self):
        with pytest.raises(ValueError, match="phase"):
            FaultSpec(phase="shuffle", kind="crash")
        with pytest.raises(ValueError, match="kind"):
            FaultSpec(phase="map", kind="explode")

    def test_plane_phase_validates_kind_and_point(self):
        spec = FaultSpec(phase="plane", kind="corrupt-segment", point="attach")
        assert spec.point == "attach"
        FaultSpec(phase="plane", kind="stale-lease")  # point=None wildcards
        with pytest.raises(ValueError, match="plane fault kind"):
            FaultSpec(phase="plane", kind="transient")
        with pytest.raises(ValueError, match="plane fault point"):
            FaultSpec(phase="plane", kind="crash", point="teardown")
        with pytest.raises(ValueError, match="phase='plane'"):
            FaultSpec(phase="map", kind="crash", point="attach")

    def test_plane_fault_addressed_by_point(self):
        from repro.mapreduce.faults import FaultInjector

        inj = FaultInjector(
            specs=(FaultSpec(phase="plane", kind="stale-lease", point="claim"),)
        )
        assert inj.plane_fault("claim") is not None
        assert inj.plane_fault("attach") is None
        # Plane specs never leak into task addressing, and vice versa.
        assert inj.fault_for("map", 0, 1) is None
        wildcard = FaultInjector(
            specs=(FaultSpec(phase="plane", kind="corrupt-segment"),)
        )
        assert wildcard.plane_fault("attach") is not None
        assert wildcard.plane_fault("publish") is not None

    def test_pinned_address_matches_exactly(self):
        spec = FaultSpec(phase="map", kind="transient", index=3, attempt=2)
        assert spec.matches("map", 3, 2)
        assert not spec.matches("map", 3, 1)
        assert not spec.matches("map", 2, 2)
        assert not spec.matches("reduce", 3, 2)

    def test_wildcards(self):
        spec = FaultSpec(phase="reduce", kind="shm")  # index=ANY, attempt=ANY
        assert spec.matches("reduce", 0, 1)
        assert spec.matches("reduce", 7, 4)
        assert not spec.matches("map", 0, 1)
        only_first_attempt = FaultSpec(phase="map", kind="crash", attempt=1)
        assert only_first_attempt.matches("map", 5, 1)
        assert not only_first_attempt.matches("map", 5, 2)

    def test_picklable(self):
        spec = FaultSpec(phase="map", kind="hang", index=1, hang_seconds=2.0)
        assert pickle.loads(pickle.dumps(spec)) == spec


class TestFaultInjector:
    def test_explicit_spec_addressing(self):
        spec = FaultSpec(phase="map", kind="transient", index=1, attempt=1)
        inj = FaultInjector(specs=(spec,))
        assert inj.fault_for("map", 1, 1) is spec
        assert inj.fault_for("map", 1, 2) is None
        assert inj.fault_for("reduce", 1, 1) is None

    def test_fire_raises_transient(self):
        inj = FaultInjector(
            specs=(FaultSpec(phase="map", kind="transient", index=0, attempt=1),)
        )
        with pytest.raises(TransientTaskError, match="map/0 attempt 1"):
            inj.fire("map", 0, 1)
        inj.fire("map", 0, 2)  # address miss: no fault

    def test_shm_faults_fire_only_at_shm_touch_points(self):
        inj = FaultInjector(specs=(FaultSpec(phase="reduce", kind="shm"),))
        inj.fire("reduce", 0, 1)  # task entry: shm faults do nothing here
        with pytest.raises(OSError, match="injected shm fault"):
            inj.shm_fault("reduce", 0, 1)
        inj.shm_fault("map", 0, 1)  # address miss: no fault

    def test_random_mode_is_deterministic_and_address_keyed(self):
        a = FaultInjector(seed=7, rate=0.5)
        b = FaultInjector(seed=7, rate=0.5)
        decisions_a = [a.fault_for("map", i, 1) is not None for i in range(32)]
        decisions_b = [b.fault_for("map", i, 1) is not None for i in range(32)]
        assert decisions_a == decisions_b
        assert any(decisions_a) and not all(decisions_a)
        # Keyed by address, not draw order: querying in reverse agrees.
        reversed_b = [
            b.fault_for("map", i, 1) is not None for i in reversed(range(32))
        ]
        assert decisions_a == list(reversed(reversed_b))

    def test_random_mode_respects_phase_and_rate_bounds(self):
        inj = FaultInjector(seed=1, rate=1.0, random_phase="map")
        assert inj.fault_for("map", 0, 1) is not None
        assert inj.fault_for("reduce", 0, 1) is None
        assert FaultInjector(seed=1, rate=0.0).fault_for("map", 0, 1) is None

    def test_validates_rate_and_kind(self):
        with pytest.raises(ValueError, match="rate"):
            FaultInjector(rate=1.5)
        with pytest.raises(ValueError, match="random_kind"):
            FaultInjector(random_kind="explode")

    def test_picklable(self):
        inj = FaultInjector(
            specs=(FaultSpec(phase="map", kind="crash", index=1),), seed=3
        )
        assert pickle.loads(pickle.dumps(inj)) == inj


# --------------------------------------------------------------------------- #
# RetryPolicy
# --------------------------------------------------------------------------- #


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError, match="max_attempts"):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError, match="task_timeout"):
            RetryPolicy(task_timeout=0.0)
        with pytest.raises(ValueError, match="jitter"):
            RetryPolicy(backoff_jitter=1.0)
        with pytest.raises(ValueError, match="multiplier"):
            RetryPolicy(backoff_multiplier=0.5)
        with pytest.raises(ValueError, match="speculative_fraction"):
            RetryPolicy(speculative_fraction=0.0)

    def test_first_attempt_never_waits(self):
        assert RetryPolicy().backoff_seconds(1, "map/0") == 0.0

    def test_exponential_schedule_without_jitter(self):
        policy = RetryPolicy(
            backoff_base=0.02, backoff_multiplier=2.0, backoff_jitter=0.0
        )
        assert policy.backoff_seconds(2, "map/0") == pytest.approx(0.02)
        assert policy.backoff_seconds(3, "map/0") == pytest.approx(0.04)
        assert policy.backoff_seconds(4, "map/0") == pytest.approx(0.08)

    def test_jitter_is_bounded_and_deterministic(self):
        policy = RetryPolicy(backoff_base=0.1, backoff_jitter=0.25, seed=5)
        first = policy.backoff_seconds(2, "map/3")
        assert first == policy.backoff_seconds(2, "map/3")
        assert 0.075 <= first <= 0.125
        # Different tasks retrying at once must not thunder in lockstep.
        others = {policy.backoff_seconds(2, f"map/{i}") for i in range(8)}
        assert len(others) > 1

    def test_single_attempt_reproduces_pre_fault_tolerance_behaviour(self):
        # max_attempts=1 is the documented escape hatch: any failure goes
        # straight to the serial-fallback ladder, even a transient one a
        # retry would have absorbed.
        spec = FaultSpec(phase="map", kind="transient", index=1, attempt=1)
        ex = ProcessExecutor(
            max_workers=2,
            retry=fast_policy(max_attempts=1),
            injector=FaultInjector(specs=(spec,)),
        )
        with pytest.warns(RuntimeWarning, match="falling back to serial"):
            result = ex.run(make_job(), make_splits(4))
        assert all(r.executor == "serial" for r in result.records)


# --------------------------------------------------------------------------- #
# TaskScheduler (driver-side unit tests over a thread pool / fake futures)
# --------------------------------------------------------------------------- #


@pytest.fixture
def thread_pool():
    pool = ThreadPoolExecutor(max_workers=4)
    yield pool
    pool.shutdown(wait=True)


def _noop_sleep(_seconds):
    return None


class TestTaskScheduler:
    def test_all_tasks_commit_first_attempt(self, thread_pool):
        sched = TaskScheduler(fast_policy(sleep=_noop_sleep))
        for i in range(4):
            sched.add("map", i, lambda a, i=i: thread_pool.submit(lambda: i * 10))
        completed = []
        sched.run(on_complete=lambda ph, idx, val: completed.append((ph, idx, val)))
        assert sorted(completed) == [("map", i, i * 10) for i in range(4)]
        for i in range(4):
            assert sched.result("map", i) == i * 10
            meta = sched.meta("map", i)
            assert (meta.attempts, meta.winner, meta.speculative) == (1, 1, False)

    def test_failed_attempt_retries_and_reports_the_dead_attempt(self, thread_pool):
        dead = []
        sched = TaskScheduler(
            fast_policy(sleep=_noop_sleep),
            on_attempt_dead=lambda ph, idx, att: dead.append((ph, idx, att)),
        )

        def work(attempt):
            if attempt == 1:
                raise TransientTaskError("first attempt dies")
            return "recovered"

        sched.add("map", 0, lambda a: thread_pool.submit(work, a))
        sched.run()
        assert sched.result("map", 0) == "recovered"
        meta = sched.meta("map", 0)
        assert (meta.attempts, meta.winner) == (2, 2)
        assert dead == [("map", 0, 1)]

    def test_exhausted_budget_raises_named_chained_error(self, thread_pool):
        sched = TaskScheduler(fast_policy(max_attempts=2, sleep=_noop_sleep))

        def work(_attempt):
            raise ValueError("persistent")

        sched.add("reduce", 3, lambda a: thread_pool.submit(work, a))
        with pytest.raises(TaskFailedError) as ei:
            sched.run()
        assert (ei.value.phase, ei.value.index, ei.value.attempts) == ("reduce", 3, 2)
        assert isinstance(ei.value.__cause__, ValueError)

    def test_deadline_retry_beats_the_zombie(self, thread_pool):
        dead = []
        sched = TaskScheduler(
            fast_policy(task_timeout=0.15, zombie_grace=5.0, sleep=_noop_sleep),
            on_attempt_dead=lambda ph, idx, att: dead.append((ph, idx, att)),
        )

        def work(attempt):
            if attempt == 1:
                time.sleep(0.6)  # straggles past the deadline
            return f"attempt-{attempt}"

        sched.add("map", 0, lambda a: thread_pool.submit(work, a))
        sched.run()
        assert sched.result("map", 0) == "attempt-2"
        meta = sched.meta("map", 0)
        assert (meta.attempts, meta.winner) == (2, 2)
        # The zombie was drained and reported dead so spills can be swept.
        assert ("map", 0, 1) in dead

    def test_zombie_that_finishes_first_still_wins(self, thread_pool):
        sched = TaskScheduler(
            fast_policy(
                max_attempts=2, task_timeout=0.3, zombie_grace=5.0, sleep=_noop_sleep
            )
        )

        def work(attempt):
            # Attempt 1 misses the deadline but lands well before its
            # replacement: first commit wins, the replacement is discarded.
            time.sleep(0.45 if attempt == 1 else 0.8)
            return f"attempt-{attempt}"

        sched.add("map", 0, lambda a: thread_pool.submit(work, a))
        sched.run()
        assert sched.result("map", 0) == "attempt-1"
        meta = sched.meta("map", 0)
        assert (meta.attempts, meta.winner) == (2, 1)

    def test_speculation_duplicates_the_straggler(self, thread_pool):
        sched = TaskScheduler(
            fast_policy(
                speculative=True,
                speculative_fraction=0.5,
                speculative_multiplier=1.5,
                sleep=_noop_sleep,
            )
        )

        def work(index, attempt):
            if index == 3 and attempt == 1:
                time.sleep(0.8)  # the straggler a duplicate must race
            return (index, attempt)

        for i in range(4):
            sched.add("map", i, lambda a, i=i: thread_pool.submit(work, i, a))
        sched.run()
        meta = sched.meta("map", 3)
        assert meta.speculative
        assert meta.attempts == 2
        assert sched.result("map", 3) == (3, 2)  # the duplicate won
        assert all(not sched.meta("map", i).speculative for i in range(3))

    def test_broken_future_respawns_pool_once_and_retries(self):
        respawns = []

        def submit(attempt):
            fut = Future()
            if attempt == 1:
                fut.set_exception(BrokenExecutor("pool died"))
            else:
                fut.set_result("after respawn")
            return fut

        sched = TaskScheduler(
            fast_policy(sleep=_noop_sleep), respawn=lambda: respawns.append(1)
        )
        sched.add("map", 0, submit)
        sched.run()
        assert sched.result("map", 0) == "after respawn"
        assert sched.meta("map", 0).attempts == 2
        assert len(respawns) == 1

    def test_submit_onto_broken_pool_respawns_and_resubmits(self):
        respawns = []
        calls = []

        def submit(attempt):
            calls.append(attempt)
            if len(calls) == 1:
                raise BrokenExecutor("pool already broken at submit")
            fut = Future()
            fut.set_result("ok")
            return fut

        sched = TaskScheduler(
            fast_policy(sleep=_noop_sleep), respawn=lambda: respawns.append(1)
        )
        sched.add("map", 0, submit)
        sched.run()
        assert sched.result("map", 0) == "ok"
        assert calls == [1, 1]  # same attempt resubmitted, not a retry
        assert sched.meta("map", 0).attempts == 1
        assert len(respawns) == 1

    def test_on_complete_may_add_tasks(self, thread_pool):
        # Reduce slowstart rides on this: map commits schedule reduce tasks.
        sched = TaskScheduler(fast_policy(sleep=_noop_sleep))

        def on_complete(phase, index, _value):
            if phase == "map":
                sched.add(
                    "reduce", index, lambda a, i=index: thread_pool.submit(lambda: -i)
                )

        for i in range(3):
            sched.add("map", i, lambda a, i=i: thread_pool.submit(lambda: i))
        sched.run(on_complete=on_complete)
        assert [sched.result("reduce", i) for i in range(3)] == [0, -1, -2]

    def test_backoff_waits_route_through_the_injectable_sleep(self):
        slept = []

        def submit(attempt):
            fut = Future()
            if attempt < 3:
                fut.set_exception(TransientTaskError(f"attempt {attempt}"))
            else:
                fut.set_result("third time lucky")
            return fut

        policy = RetryPolicy(
            backoff_base=0.01, backoff_jitter=0.0, sleep=slept.append
        )
        sched = TaskScheduler(policy)
        sched.add("map", 0, submit)
        sched.run()
        assert sched.result("map", 0) == "third time lucky"
        # Both backoffs blocked through the hook (no futures were in
        # flight), with the exponential schedule's delays.
        assert len(slept) >= 2
        assert max(slept) <= 0.03


# --------------------------------------------------------------------------- #
# the fault matrix: every kind x phase x start method x shuffle recovers
# --------------------------------------------------------------------------- #


@pytest.fixture(scope="module")
def serial_output():
    result = SerialExecutor().run(make_job(), make_splits(4))
    return sorted(result.flat_outputs())


def _record_for(result, phase, index):
    kind = TaskKind.MAP if phase == "map" else TaskKind.REDUCE
    matches = [
        r
        for r in result.records
        if r.kind is kind and r.task_id.endswith(f"{index:05d}")
    ]
    assert len(matches) == 1, matches
    return matches[0]


class TestFaultMatrix:
    @pytest.mark.parametrize("start_method", ["fork", "spawn"])
    @pytest.mark.parametrize("shuffle", ["barrier", "streaming"])
    @pytest.mark.parametrize("phase", ["map", "reduce"])
    @pytest.mark.parametrize("kind", ["crash", "hang", "transient", "shm"])
    def test_one_fault_recovers_in_place(
        self, kind, phase, shuffle, start_method, serial_output
    ):
        spec = FaultSpec(
            phase=phase, kind=kind, index=1, attempt=1, hang_seconds=1.5
        )
        policy = fast_policy(task_timeout=0.35 if kind == "hang" else None)
        before = _shm_segments()
        executor = ProcessExecutor(
            max_workers=2,
            start_method=start_method,
            shuffle=shuffle,
            retry=policy,
            injector=FaultInjector(specs=(spec,)),
        )
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # any serial fallback fails the test
            result = executor.run(make_job(), make_splits(4))

        assert sorted(result.flat_outputs()) == serial_output
        assert all(r.executor == "processes" for r in result.records)
        assert all(r.fallback_reason == "" for r in result.records)

        target = _record_for(result, phase, 1)
        if (kind, phase, shuffle) == ("shm", "map", "streaming"):
            # A failed spill write degrades to the inline-bytes path inside
            # the same attempt; nothing retries.
            assert all(r.attempts == 1 for r in result.records)
        else:
            assert target.attempts == 2
            assert target.winner == 2
        assert _shm_segments() - before == set()

    @pytest.mark.parametrize("shuffle", ["barrier", "streaming"])
    def test_speculative_duplicate_races_an_injected_straggler(
        self, shuffle, serial_output
    ):
        # No deadline here: speculation alone must rescue the hung task.
        spec = FaultSpec(
            phase="map", kind="hang", index=1, attempt=1, hang_seconds=1.5
        )
        policy = fast_policy(
            speculative=True, speculative_fraction=0.5, speculative_multiplier=1.5
        )
        executor = ProcessExecutor(
            max_workers=4,
            shuffle=shuffle,
            retry=policy,
            injector=FaultInjector(specs=(spec,)),
        )
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            result = executor.run(make_job(), make_splits(4))
        assert sorted(result.flat_outputs()) == serial_output
        target = _record_for(result, "map", 1)
        assert target.speculative
        assert target.attempts == 2
        assert target.winner == 2


class TestWorkerPoolFaults:
    @pytest.mark.parametrize("shuffle", ["barrier", "streaming"])
    def test_crash_respawns_and_the_pool_stays_usable(self, shuffle, serial_output):
        spec = FaultSpec(phase="map", kind="crash", index=1, attempt=1)
        before = _shm_segments()
        pool = WorkerPool(
            max_workers=2,
            shuffle=shuffle,
            retry=fast_policy(),
            injector=FaultInjector(specs=(spec,)),
        )
        try:
            with warnings.catch_warnings():
                warnings.simplefilter("error")
                first = pool.run(make_job(), make_splits(4))
                second = pool.run(make_job(), make_splits(4))
        finally:
            pool.shutdown()
        assert sorted(first.flat_outputs()) == serial_output
        assert sorted(second.flat_outputs()) == serial_output
        assert _record_for(first, "map", 1).attempts == 2
        assert _shm_segments() - before == set()


# --------------------------------------------------------------------------- #
# acceptance: one delayed crash, recovered without any serial work
# --------------------------------------------------------------------------- #


class TestAcceptanceSingleCrash:
    def test_crashed_map_task_is_redone_alone(self, serial_output):
        """ISSUE 5 acceptance: a worker crash killing exactly one map task
        of a 4-worker streaming run is recovered by retrying that one task
        on a respawned pool — no serial fallback, byte-identical output,
        exactly one record shows a second attempt, nothing leaks."""
        before = _shm_segments()
        # The delay lets the crasher's ms-fast wave-mates commit first, so
        # precisely one task is in flight when the pool breaks.
        spec = FaultSpec(phase="map", kind="crash", index=1, attempt=1, delay=0.3)
        executor = ProcessExecutor(
            max_workers=4,
            shuffle="streaming",
            retry=fast_policy(),
            injector=FaultInjector(specs=(spec,)),
        )
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # a fallback warning fails the test
            result = executor.run(make_job(), make_splits(4))

        assert sorted(result.flat_outputs()) == serial_output
        assert all(r.executor == "processes" for r in result.records)
        retried = [r for r in result.records if r.attempts > 1]
        assert len(retried) == 1
        (record,) = retried
        assert record.kind is TaskKind.MAP
        assert record.task_id.endswith("00001")
        assert (record.attempts, record.winner) == (2, 2)
        assert _shm_segments() - before == set()


# --------------------------------------------------------------------------- #
# the fallback ladder: exhaustion, reasons, and unmasked causes
# --------------------------------------------------------------------------- #


class TestFallbackLadder:
    def test_exhausted_budget_falls_back_with_reason_stamped(self, serial_output):
        # attempt=ANY: the fault outlives every retry, so the budget spends
        # out and the job reruns serially — correctly, with forensics.
        spec = FaultSpec(phase="map", kind="transient", index=1, attempt=ANY)
        executor = ProcessExecutor(
            max_workers=2,
            retry=fast_policy(max_attempts=2),
            injector=FaultInjector(specs=(spec,)),
        )
        with pytest.warns(RuntimeWarning, match="falling back to serial"):
            result = executor.run(make_job(), make_splits(4))
        assert sorted(result.flat_outputs()) == serial_output
        assert all(r.executor == "serial" for r in result.records)
        assert all("TaskFailedError" in r.fallback_reason for r in result.records)

    @pytest.mark.parametrize("shuffle", ["barrier", "streaming"])
    def test_exhaustion_sweeps_spills_before_serial_rerun(
        self, shuffle, serial_output
    ):
        spec = FaultSpec(phase="reduce", kind="transient", index=0, attempt=ANY)
        before = _shm_segments()
        executor = ProcessExecutor(
            max_workers=2,
            shuffle=shuffle,
            retry=fast_policy(max_attempts=2),
            injector=FaultInjector(specs=(spec,)),
        )
        with pytest.warns(RuntimeWarning, match="falling back to serial"):
            result = executor.run(make_job(), make_splits(4))
        assert sorted(result.flat_outputs()) == serial_output
        assert _shm_segments() - before == set()

    def test_serial_failure_does_not_mask_the_original_task_error(self):
        job = MapReduceJob(
            mapper=_poison_mapper, reducer=_sum_reducer, num_reducers=2, name="t"
        )
        executor = ProcessExecutor(max_workers=2, retry=fast_policy(max_attempts=2))
        with pytest.warns(RuntimeWarning, match="falling back to serial"):
            with pytest.raises(RuntimeError, match="also failed") as ei:
                executor.run(job, make_splits(2))
        # The raised error names the failing task and chains the original.
        assert "original failure was map task" in str(ei.value)
        assert isinstance(ei.value.__cause__, TaskFailedError)
        assert ei.value.__cause__.phase == "map"
        assert ei.value.__cause__.attempts == 2
