"""Crash-safe cross-process plane lifecycle tests (the lease registry).

Covers the registry's whole contract directly against ``/dev/shm``:
sessions share one plane per database fingerprint, the last *live*
leaseholder's release unlinks every segment, SIGKILLed holders (creator
included, under fork and spawn) leave orphans the reaper reclaims, corrupt
planes are detected — never silently searched — and the search degrades to
the in-process database path with the reason stamped on the result.
"""

import os
import signal
import subprocess
import sys
import textwrap
import warnings

import numpy as np
import pytest

from repro.core.orion import OrionSearch
from repro.mapreduce import shm as shm_mod
from repro.mapreduce.faults import FaultInjector, FaultSpec
from repro.mapreduce.runtime import ProcessExecutor
from repro.mapreduce.shm import (
    PLANE_PREFIX,
    PLANE_SLOTS,
    PlaneBusyError,
    PlaneCorruptError,
    PlaneRegistry,
    attach_segment_untracked,
    attach_view,
    list_planes,
    reap_orphan_planes,
)
from repro.sequence.generator import (
    HomologySpec,
    make_database,
    make_query_with_homologies,
)

pytestmark = pytest.mark.skipif(
    not shm_mod.HAVE_SHARED_MEMORY, reason="platform lacks POSIX shared memory"
)

K = 9


def _plane_segments():
    """Names of live registry-managed plane segments (Linux probe)."""
    try:
        return {n for n in os.listdir("/dev/shm") if n.startswith(PLANE_PREFIX)}
    except FileNotFoundError:  # pragma: no cover - non-Linux
        return set()


@pytest.fixture
def db():
    return make_database(101, num_sequences=5, mean_length=400)


@pytest.fixture(autouse=True)
def _no_leaked_planes():
    """Every test leaves /dev/shm exactly as it found it."""
    before = _plane_segments()
    yield
    leaked = _plane_segments() - before
    if leaked:  # clean up, then fail loudly
        reap_orphan_planes()
    assert not leaked, f"test leaked plane segments: {sorted(leaked)}"


def _subprocess_env():
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(shm_mod.__file__), "..", "..")
    env["PYTHONPATH"] = os.path.abspath(src)
    return env


#: A child process that leases the shared plane for the fixture database,
#: reports its registry segment, then parks until told to exit (or killed).
_HOLDER_SCRIPT = textwrap.dedent(
    """\
    import os, sys
    from repro.mapreduce.shm import PlaneRegistry
    from repro.sequence.generator import make_database

    db = make_database(101, num_sequences=5, mean_length=400)
    lease = PlaneRegistry.attach_or_create(db, 9)
    print(f"READY {int(lease.created)} {lease.handle.registry_segment}", flush=True)
    line = sys.stdin.readline()  # park until the parent speaks (or kills us)
    if line.strip() == "release":
        lease.release()
        print("RELEASED", flush=True)
    """
)


def _spawn_holder():
    proc = subprocess.Popen(
        [sys.executable, "-c", _HOLDER_SCRIPT],
        stdin=subprocess.PIPE,
        stdout=subprocess.PIPE,
        text=True,
        env=_subprocess_env(),
        start_new_session=True,  # killpg must never reach the test runner
    )
    ready = proc.stdout.readline().split()
    assert ready[0] == "READY", ready
    return proc, bool(int(ready[1])), ready[2]


def _kill_holder(proc):
    os.killpg(proc.pid, signal.SIGKILL)
    proc.wait()
    proc.stdin.close()
    proc.stdout.close()


def _release_holder(proc):
    proc.stdin.write("release\n")
    proc.stdin.flush()
    assert proc.stdout.readline().strip() == "RELEASED"
    proc.stdin.close()
    proc.stdout.close()
    proc.wait()


# --------------------------------------------------------------------------- #
# in-process lifecycle
# --------------------------------------------------------------------------- #


class TestLeaseLifecycle:
    def test_attach_shares_created_segments(self, db):
        with PlaneRegistry.attach_or_create(db, K) as first:
            assert first.created
            with PlaneRegistry.attach_or_create(db, K) as second:
                assert not second.created
                assert second.handle.segment_names == first.handle.segment_names
                assert second.slot != first.slot
                view = attach_view(second.handle)
                try:
                    rec = next(iter(db))
                    assert np.array_equal(view.codes(rec.seq_id), rec.codes)
                finally:
                    view.close()

    def test_last_release_unlinks_any_order(self, db):
        first = PlaneRegistry.attach_or_create(db, K)
        second = PlaneRegistry.attach_or_create(db, K)
        names = set(first.handle.segment_names) | {first.handle.registry_segment}
        # Creator releases first: attacher keeps the plane alive.
        first.release()
        assert names <= _plane_segments()
        second.release()
        assert not names & _plane_segments()

    def test_release_is_idempotent(self, db):
        lease = PlaneRegistry.attach_or_create(db, K)
        lease.release()
        lease.release()  # no raise, no tracker noise
        assert lease.released

    def test_distinct_parameters_get_distinct_planes(self, db):
        with PlaneRegistry.attach_or_create(db, K) as a:
            with PlaneRegistry.attach_or_create(db, K + 2) as b:
                assert a.digest != b.digest
                assert not set(a.handle.segment_names) & set(b.handle.segment_names)

    def test_reap_skips_planes_with_live_leases(self, db):
        with PlaneRegistry.attach_or_create(db, K) as lease:
            assert reap_orphan_planes() == []
            assert shm_mod.segment_exists(lease.handle.registry_segment)

    def test_list_planes_reports_health_and_holders(self, db):
        with PlaneRegistry.attach_or_create(db, K) as lease:
            status = {s.digest: s for s in list_planes()}[lease.digest]
            assert status.healthy
            assert status.db_name == db.name
            assert status.k == K
            assert status.generation == 1
            assert os.getpid() in status.live_pids
            assert not status.reapable
            assert status.num_segments == 5  # registry + 4 data segments

    def test_forked_child_release_does_not_clear_parent_slot(self, db):
        lease = PlaneRegistry.attach_or_create(db, K)
        try:
            pid = os.fork()
            if pid == 0:  # child: inherits the lease object, must not own it
                lease.release()
                os._exit(0)
            _, status = os.waitpid(pid, 0)
            assert os.waitstatus_to_exitcode(status) == 0
            # The parent's slot survived the child's release: the plane is
            # still held and a fresh attach still shares it.
            with PlaneRegistry.attach_or_create(db, K) as again:
                assert not again.created
        finally:
            lease.release()


# --------------------------------------------------------------------------- #
# integrity verification
# --------------------------------------------------------------------------- #


class TestIntegrity:
    def test_corrupt_data_segment_detected_when_pinned(self, db):
        with PlaneRegistry.attach_or_create(db, K) as lease:
            seg = attach_segment_untracked(lease.handle.segment_names[0])
            try:
                seg.buf[:32] = b"\xa5" * 32
            finally:
                seg.close()
            with pytest.raises(PlaneCorruptError, match="checksum"):
                PlaneRegistry.attach_or_create(db, K)

    def test_layout_version_gate(self, db):
        with PlaneRegistry.attach_or_create(db, K) as lease:
            reg = attach_segment_untracked(lease.handle.registry_segment)
            try:
                reg.buf[8:12] = (999).to_bytes(4, "little")  # layout_version
            finally:
                reg.close()
            with pytest.raises(PlaneCorruptError, match="layout version"):
                PlaneRegistry.attach_or_create(db, K)

    def test_corrupt_unheld_plane_is_rebuilt_with_bumped_generation(
        self, db, monkeypatch
    ):
        lease = PlaneRegistry.attach_or_create(db, K)
        seg = attach_segment_untracked(lease.handle.segment_names[0])
        try:
            seg.buf[:32] = b"\xff" * 32
        finally:
            seg.close()
        # Simulate a crashed holder: mark the lease dead without releasing
        # (so the segments survive), and keep the reaper out of the way to
        # force the attach path itself to handle the corrupt orphan.
        digest = lease.digest
        reg = attach_segment_untracked(lease.handle.registry_segment)
        try:
            shm_mod._write_slot(reg, lease.slot, 0, 0, 0)
        finally:
            reg.close()
        lease._released = True  # the slot is gone; plain release would no-op
        shm_mod._LIVE_LEASES.pop(lease.nonce, None)
        monkeypatch.setattr(shm_mod, "reap_orphan_planes", lambda: [])
        with PlaneRegistry.attach_or_create(db, K) as rebuilt:
            assert rebuilt.created
            assert rebuilt.generation == 2
            assert rebuilt.digest == digest

    def test_stale_slot_of_dead_pid_is_reclaimed(self, db, monkeypatch):
        proc, created, _ = _spawn_holder()
        assert created
        _kill_holder(proc)
        monkeypatch.setattr(shm_mod, "reap_orphan_planes", lambda: [])
        with PlaneRegistry.attach_or_create(db, K) as lease:
            assert not lease.created  # healthy plane: attached, not rebuilt
            assert lease.slot == 0  # the dead creator's slot, reclaimed

    def test_slot_exhaustion_raises_busy(self, db):
        lease = PlaneRegistry.attach_or_create(db, K)
        reg = attach_segment_untracked(lease.handle.registry_segment)
        me = os.getpid()
        start = shm_mod.process_start_time(me)
        try:
            for slot in range(PLANE_SLOTS):
                if slot != lease.slot:
                    shm_mod._write_slot(reg, slot, me, start, slot + 2)
            with pytest.raises(PlaneBusyError, match="lease slots"):
                PlaneRegistry.attach_or_create(db, K)
            for slot in range(PLANE_SLOTS):  # hand the slots back
                if slot != lease.slot:
                    shm_mod._write_slot(reg, slot, 0, 0, 0)
        finally:
            reg.close()
        lease.release()

    def test_injected_stale_lease_is_not_counted_live(self, db):
        creator = PlaneRegistry.attach_or_create(db, K)
        inj = FaultInjector(
            specs=(FaultSpec(phase="plane", kind="stale-lease", point="claim"),)
        )
        lease = PlaneRegistry.attach_or_create(db, K, injector=inj)
        assert not lease.created  # the claim point only fires on attach
        names = set(lease.handle.segment_names) | {lease.handle.registry_segment}
        creator.release()
        reg = attach_segment_untracked(lease.handle.registry_segment)
        try:
            # The injector wrote an extra slot: our pid, a wrong start time.
            slots = [
                shm_mod._read_slot(reg, s)
                for s in range(PLANE_SLOTS)
                if shm_mod._read_slot(reg, s)[2] != 0
            ]
            assert len(slots) == 2
            assert shm_mod._live_slot_pids(reg) == [os.getpid()]
        finally:
            reg.close()
        # Pid-reuse defence: despite the poisoned slot naming a live pid,
        # this release is the last *live* lease and must sweep everything.
        lease.release()
        assert not names & _plane_segments()


# --------------------------------------------------------------------------- #
# cross-process sharing + crash recovery
# --------------------------------------------------------------------------- #


class TestCrossProcess:
    def test_two_sessions_share_one_plane(self, db):
        proc, created, registry_name = _spawn_holder()
        assert created
        try:
            with PlaneRegistry.attach_or_create(db, K) as lease:
                assert not lease.created
                assert lease.handle.registry_segment == registry_name
        finally:
            _release_holder(proc)
        assert not shm_mod.segment_exists(registry_name)

    def test_sigkilled_holder_leaves_orphan_reaper_reclaims(self, db):
        proc, _, registry_name = _spawn_holder()
        _kill_holder(proc)
        assert shm_mod.segment_exists(registry_name)  # the orphan persists
        removed = reap_orphan_planes()
        assert registry_name in removed
        assert len([n for n in removed if registry_name[:-4] in n]) == 5
        assert not shm_mod.segment_exists(registry_name)
        # A fresh attach_or_create rebuilds a healthy plane.
        with PlaneRegistry.attach_or_create(db, K) as lease:
            assert lease.created
            status = {s.digest: s for s in list_planes()}[lease.digest]
            assert status.healthy

    def test_racing_attachers_create_exactly_once(self, db):
        procs = [_spawn_holder() for _ in range(3)]
        try:
            created_flags = [created for _, created, _ in procs]
            registries = {name for _, _, name in procs}
            assert sum(created_flags) == 1
            assert len(registries) == 1
        finally:
            for proc, _, _ in procs:
                _release_holder(proc)
        assert not shm_mod.segment_exists(next(iter(registries)))


def _search_script(start_method):
    return textwrap.dedent(
        f"""\
        import sys
        from repro.core.orion import OrionSearch
        from repro.mapreduce.runtime import ProcessExecutor
        from repro.sequence.generator import (
            HomologySpec, make_database, make_query_with_homologies,
        )

        db = make_database(7, num_sequences=5, mean_length=400)
        query, _ = make_query_with_homologies(
            11, 600, db, [HomologySpec(length=120)]
        )
        search = OrionSearch(
            db, num_shards=4,
            executor=ProcessExecutor(max_workers=2, start_method={start_method!r}),
        )
        search.warmup()  # plane published, workers forked/spawned
        print("READY " + search._shm_handle.registry_segment, flush=True)
        res = search.run(query)  # the parent SIGKILLs us in here
        print("DONE", flush=True)
        sys.stdin.readline()
        """
    )


class TestCreatorCrashMatrix:
    """SIGKILL the plane-creating process mid-search, under fork and spawn.

    The acceptance matrix: the survivor (this test process) keeps searching
    with byte-identical results, and once the survivor releases — or a reap
    runs — ``/dev/shm`` is empty again.
    """

    @pytest.mark.parametrize("start_method", ["fork", "spawn"])
    def test_survivor_searches_then_cleanup_empties_shm(self, start_method):
        db = make_database(7, num_sequences=5, mean_length=400)
        query, _ = make_query_with_homologies(
            11, 600, db, [HomologySpec(length=120)]
        )
        serial = OrionSearch(db, num_shards=4, executor="serial").run(query)
        serial_keys = [str(a) for a in serial.alignments]

        creator = subprocess.Popen(
            [sys.executable, "-c", _search_script(start_method)],
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            text=True,
            env=_subprocess_env(),
            start_new_session=True,
        )
        ready = creator.stdout.readline().split()
        assert ready[0] == "READY", ready
        registry_name = ready[1]

        # Attach as the survivor while the creator is alive and mid-search,
        # then SIGKILL the creator's whole process group (workers included).
        survivor = OrionSearch(
            db, num_shards=4,
            executor=ProcessExecutor(max_workers=2, start_method=start_method),
        )
        try:
            survivor._ensure_plane()
            assert survivor._shm_handle.registry_segment == registry_name
            assert survivor._plane_mode == "attached"
            _kill_holder(creator)

            res = survivor.run(query)
            assert [str(a) for a in res.alignments] == serial_keys
            assert res.plane_attached == 1
        finally:
            survivor.close()
        # The survivor was the last live leaseholder: its exit swept the
        # plane, dead creator's slot notwithstanding.
        assert not shm_mod.segment_exists(registry_name)

    def test_crash_before_registry_publish_is_reaped(self, db):
        """A creator killed between publishing data segments and writing the
        registry leaves nameless orphans only the /dev/shm scan can find."""
        script = textwrap.dedent(
            """\
            from repro.mapreduce.faults import FaultInjector, FaultSpec
            from repro.mapreduce.shm import PlaneRegistry
            from repro.sequence.generator import make_database

            db = make_database(101, num_sequences=5, mean_length=400)
            inj = FaultInjector(
                specs=(FaultSpec(phase="plane", kind="crash", point="publish"),)
            )
            PlaneRegistry.attach_or_create(db, 9, injector=inj)
            """
        )
        proc = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            env=_subprocess_env(),
        )
        assert proc.returncode == 13  # the injected os._exit
        orphans = {
            n for n in _plane_segments() if not n.endswith("_reg")
        }
        assert orphans  # data segments exist...
        assert not any(n.endswith("_reg") for n in _plane_segments())
        removed = reap_orphan_planes()  # ...and the scan-based reap finds them
        assert set(removed) >= orphans
        assert not _plane_segments()


# --------------------------------------------------------------------------- #
# search-level degradation
# --------------------------------------------------------------------------- #


class TestSearchFallback:
    def test_corrupt_plane_falls_back_with_reason(self, db):
        query, _ = make_query_with_homologies(
            11, 600, db, [HomologySpec(length=120)]
        )
        serial = OrionSearch(db, num_shards=4, executor="serial").run(query)
        inj = FaultInjector(
            specs=(FaultSpec(phase="plane", kind="corrupt-segment", point="attach"),)
        )
        search = OrionSearch(
            db, num_shards=4, executor="processes", num_workers=2,
            fault_injector=inj,
        )
        # A live holder pins the corrupted plane, so the search cannot
        # rebuild it — it must degrade, not fail, and must say why.
        holder = PlaneRegistry.attach_or_create(db, search.params.k)
        try:
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                res = search.run(query)
            assert res.plane_fallback == 1
            assert res.plane_created == 0 and res.plane_attached == 0
            assert "PlaneCorruptError" in res.plane_fallback_reason
            assert any("falling back" in str(w.message) for w in caught)
            assert [str(a) for a in res.alignments] == [
                str(a) for a in serial.alignments
            ]
        finally:
            search.close()
            holder.release()

    def test_result_counters_round_trip_rescaled(self, db):
        query, _ = make_query_with_homologies(
            11, 600, db, [HomologySpec(length=120)]
        )
        with OrionSearch(
            db, num_shards=4, executor="processes", num_workers=2
        ) as search:
            res = search.run(query)
            assert res.plane_created == 1
            scaled = res.rescaled(2.0)
            assert scaled.plane_created == 1
            assert scaled.plane_fallback_reason is None
