"""Tests for executors: correctness, determinism, task records."""

import pytest

from repro.mapreduce.job import MapReduceJob
from repro.mapreduce.runtime import SerialExecutor, ThreadedExecutor
from repro.mapreduce.types import InputSplit, TaskKind


def make_job(n_red=2):
    def mapper(split):
        for x in split.payload:
            yield x % 5, x

    def reducer(key, values):
        yield key, sum(values)

    return MapReduceJob(mapper=mapper, reducer=reducer, num_reducers=n_red, name="t")


def make_splits(n=6, width=10):
    return [
        InputSplit(index=i, payload=list(range(i * width, (i + 1) * width)))
        for i in range(n)
    ]


class TestSerialExecutor:
    def test_outputs_correct(self):
        result = SerialExecutor().run(make_job(), make_splits())
        totals = dict(result.flat_outputs())
        expected = {}
        for x in range(60):
            expected[x % 5] = expected.get(x % 5, 0) + x
        assert totals == expected

    def test_task_records(self):
        result = SerialExecutor().run(make_job(3), make_splits(4))
        assert len(result.map_records()) == 4
        assert len(result.reduce_records()) == 3
        assert all(r.duration >= 0 for r in result.records)
        assert result.shuffle_keys == 5

    def test_task_ids_unique(self):
        result = SerialExecutor().run(make_job(), make_splits())
        ids = [r.task_id for r in result.records]
        assert len(set(ids)) == len(ids)

    def test_empty_splits(self):
        result = SerialExecutor().run(make_job(), [])
        assert result.flat_outputs() == []
        assert len(result.reduce_records()) == 2  # reducers still run (empty)


class TestThreadedExecutor:
    def test_matches_serial(self):
        job = make_job(3)
        splits = make_splits(8)
        serial = SerialExecutor().run(job, splits)
        threaded = ThreadedExecutor(max_workers=4).run(job, splits)
        assert serial.outputs == threaded.outputs
        assert serial.shuffle_keys == threaded.shuffle_keys

    def test_worker_count_validated(self):
        with pytest.raises(ValueError):
            ThreadedExecutor(max_workers=0)

    def test_record_counts(self):
        result = ThreadedExecutor(2).run(make_job(2), make_splits(5))
        assert len(result.map_records()) == 5
        assert len(result.reduce_records()) == 2


class TestTaskRecordScaling:
    def test_scaled(self):
        from repro.mapreduce.types import TaskRecord

        rec = TaskRecord(task_id="x", kind=TaskKind.MAP, duration=2.0)
        assert rec.scaled(3.0).duration == 6.0

    def test_scale_positive(self):
        from repro.mapreduce.types import TaskRecord

        rec = TaskRecord(task_id="x", kind=TaskKind.MAP, duration=2.0)
        with pytest.raises(ValueError):
            rec.scaled(0.0)

    def test_negative_duration_rejected(self):
        from repro.mapreduce.types import TaskRecord

        with pytest.raises(ValueError):
            TaskRecord(task_id="x", kind=TaskKind.MAP, duration=-1.0)
