"""Tests for executors: correctness, determinism, task records."""

import pickle
import time

import pytest

from repro.mapreduce import runtime as runtime_mod
from repro.mapreduce import shm as shm_mod
from repro.mapreduce.job import MapReduceJob
from repro.mapreduce.runtime import (
    EXECUTOR_KINDS,
    ProcessExecutor,
    SerialExecutor,
    ThreadedExecutor,
    resolve_executor,
)
from repro.mapreduce.types import InputSplit, TaskKind


# Module-level map/reduce functions so jobs built from them are picklable
# (the process-pool tests need this; closures are the fallback case).
def _mod5_mapper(split):
    for x in split.payload:
        yield x % 5, x


def _sum_reducer(key, values):
    yield key, sum(values)


_SETUP_STATE = {"offset": 0}


def _install_offset():
    _SETUP_STATE["offset"] = 1000


def _offset_mapper(split):
    for x in split.payload:
        yield x % 5, x + _SETUP_STATE["offset"]


#: Long enough that one reduce wave vs two is visible over pool startup
#: noise (sleeps need no CPU, so this is robust on single-core CI too).
_REDUCE_SLEEP = 1.5


def _sleeping_reducer(key, values):
    time.sleep(_REDUCE_SLEEP)
    yield key, sum(values)


def _mod4_mapper(split):
    for x in split.payload:
        yield x % 4, x


def _identity_partitioner(key, num_reducers):
    # One key per partition: every reduce task sleeps exactly once, making
    # the number of reduce waves directly readable from the wall clock.
    return key % num_reducers


def make_job(n_red=2):
    return MapReduceJob(
        mapper=_mod5_mapper, reducer=_sum_reducer, num_reducers=n_red, name="t"
    )


def make_splits(n=6, width=10):
    return [
        InputSplit(index=i, payload=list(range(i * width, (i + 1) * width)))
        for i in range(n)
    ]


def expected_totals(n=6, width=10):
    expected = {}
    for x in range(n * width):
        expected[x % 5] = expected.get(x % 5, 0) + x
    return expected


class TestSerialExecutor:
    def test_outputs_correct(self):
        result = SerialExecutor().run(make_job(), make_splits())
        assert dict(result.flat_outputs()) == expected_totals()

    def test_task_records(self):
        result = SerialExecutor().run(make_job(3), make_splits(4))
        assert len(result.map_records()) == 4
        assert len(result.reduce_records()) == 3
        assert all(r.duration >= 0 for r in result.records)
        assert result.shuffle_keys == 5

    def test_task_ids_unique(self):
        result = SerialExecutor().run(make_job(), make_splits())
        ids = [r.task_id for r in result.records]
        assert len(set(ids)) == len(ids)

    def test_empty_splits(self):
        result = SerialExecutor().run(make_job(), [])
        assert result.flat_outputs() == []
        assert len(result.reduce_records()) == 2  # reducers still run (empty)

    def test_records_simulator_safe(self):
        """Serial measurements are the simulator's contract."""
        result = SerialExecutor().run(make_job(), make_splits())
        assert all(r.executor == "serial" for r in result.records)
        assert all(not r.contended for r in result.records)
        assert all(r.simulator_safe for r in result.records)

    def test_map_input_records_counts_list_payload(self):
        """Regression: input_records must report the split payload size, not
        a hardcoded 1 (sortmr/streaming splits are record batches)."""
        result = SerialExecutor().run(make_job(), make_splits(n=3, width=7))
        assert [r.input_records for r in result.map_records()] == [7, 7, 7]

    def test_map_input_records_descriptor_payload_is_one(self):
        """Non-list payloads (Orion's (fragment, shard) descriptors) are one
        logical record, not len(tuple) records."""

        def descriptor_mapper(split):
            yield split.payload[0], split.payload[1]

        job = MapReduceJob(mapper=descriptor_mapper, reducer=_sum_reducer, name="d")
        result = SerialExecutor().run(job, [InputSplit(index=0, payload=("k", 3))])
        assert result.map_records()[0].input_records == 1


class TestThreadedExecutor:
    def test_matches_serial(self):
        job = make_job(3)
        splits = make_splits(8)
        serial = SerialExecutor().run(job, splits)
        threaded = ThreadedExecutor(max_workers=4).run(job, splits)
        assert serial.outputs == threaded.outputs
        assert serial.shuffle_keys == threaded.shuffle_keys

    def test_worker_count_validated(self):
        with pytest.raises(ValueError):
            ThreadedExecutor(max_workers=0)

    def test_record_counts(self):
        result = ThreadedExecutor(2).run(make_job(2), make_splits(5))
        assert len(result.map_records()) == 5
        assert len(result.reduce_records()) == 2

    def test_single_pool_for_both_phases(self, monkeypatch):
        """Regression: one thread pool must serve map and reduce; a second
        pool per job pays startup/teardown twice for nothing."""
        created = []
        real_pool = runtime_mod.ThreadPoolExecutor

        def counting_pool(*args, **kwargs):
            created.append(1)
            return real_pool(*args, **kwargs)

        monkeypatch.setattr(runtime_mod, "ThreadPoolExecutor", counting_pool)
        ThreadedExecutor(3).run(make_job(2), make_splits(4))
        assert len(created) == 1

    def test_records_tagged_contended(self):
        """GIL-shared timings must never read as serial measurements."""
        result = ThreadedExecutor(4).run(make_job(2), make_splits(5))
        assert all(r.executor == "threads" for r in result.records)
        assert all(r.contended for r in result.records)
        assert not any(r.simulator_safe for r in result.records)

    def test_single_worker_not_contended(self):
        result = ThreadedExecutor(1).run(make_job(2), make_splits(3))
        assert all(not r.contended for r in result.records)

    def test_contended_computed_per_phase(self):
        """Regression: a phase with one task in flight is uncontended even
        on a wide pool — a blanket ``max_workers > 1`` flag wrongly
        excluded those valid durations from ``simulator_safe``."""
        result = ThreadedExecutor(4).run(make_job(1), make_splits(5))
        assert all(r.contended for r in result.map_records())
        (reduce_rec,) = result.reduce_records()
        assert not reduce_rec.contended
        assert reduce_rec.simulator_safe

    def test_single_split_map_phase_not_contended(self):
        result = ThreadedExecutor(4).run(make_job(3), make_splits(1))
        (map_rec,) = result.map_records()
        assert not map_rec.contended
        assert map_rec.simulator_safe
        assert all(r.contended for r in result.reduce_records())
        assert not any(r.simulator_safe for r in result.reduce_records())


class TestProcessExecutor:
    def test_matches_serial(self):
        job = make_job(3)
        splits = make_splits(8)
        serial = SerialExecutor().run(job, splits)
        proc = ProcessExecutor(max_workers=2).run(job, splits)
        assert serial.outputs == proc.outputs
        assert serial.shuffle_keys == proc.shuffle_keys

    def test_records_tagged(self):
        result = ProcessExecutor(max_workers=2).run(make_job(2), make_splits(4))
        assert len(result.map_records()) == 4
        assert len(result.reduce_records()) == 2
        assert all(r.executor == "processes" for r in result.records)
        assert not any(r.simulator_safe for r in result.records)

    def test_deterministic_record_order(self):
        """Map records come back in split order, reduce in partition order,
        regardless of which worker ran what."""
        result = ProcessExecutor(max_workers=2).run(make_job(3), make_splits(6))
        assert [r.task_id for r in result.map_records()] == [
            f"t/map/{i:05d}" for i in range(6)
        ]
        assert [r.task_id for r in result.reduce_records()] == [
            f"t/reduce/{i:05d}" for i in range(3)
        ]

    def test_unpicklable_job_falls_back_to_serial(self):
        captured = []

        def closure_mapper(split):  # local function: not picklable
            for x in split.payload:
                captured.append(x)
                yield x % 5, x

        job = MapReduceJob(mapper=closure_mapper, reducer=_sum_reducer, name="c")
        with pytest.warns(RuntimeWarning, match="falling back to serial"):
            result = ProcessExecutor(max_workers=2).run(job, make_splits(3))
        assert dict(result.flat_outputs()) == expected_totals(3)
        # The fallback truthfully tags its records as serial measurements.
        assert all(r.executor == "serial" for r in result.records)
        assert captured  # the closure really ran, in this process

    def test_setup_hook_runs_per_worker(self):
        """The per-worker initializer runs before any task in that process
        (Orion warms its k-mer cache there); in-process executors skip it."""
        _SETUP_STATE["offset"] = 0
        job = MapReduceJob(
            mapper=_offset_mapper,
            reducer=_sum_reducer,
            num_reducers=2,
            name="s",
            setup=_install_offset,
        )
        splits = make_splits(2, width=5)
        proc = ProcessExecutor(max_workers=2).run(job, splits)
        offsets = dict(proc.flat_outputs())
        base = SerialExecutor().run(make_job(2), splits)
        assert sum(offsets.values()) == sum(dict(base.flat_outputs()).values()) + 1000 * 10
        # Serial execution never calls setup (the caller's objects are live).
        assert _SETUP_STATE["offset"] == 0

    def test_empty_splits(self):
        result = ProcessExecutor(max_workers=2).run(make_job(), [])
        assert result.flat_outputs() == []

    def test_worker_count_validated(self):
        with pytest.raises(ValueError):
            ProcessExecutor(max_workers=0)

    def test_job_pickles_once_per_worker_not_per_task(self):
        """Dispatch ships splits, not the job: a job much larger than any
        split still runs tasks whose arguments are just the splits."""
        job = make_job()
        blob = pickle.dumps(job)
        assert len(blob) < 10_000  # sanity: module-refs, not code objects
        # The real assertion is architectural: _process_map_task's item is
        # (split, attempt, injector) — no job; it travels via the pool
        # initializer.
        import inspect

        params = inspect.signature(runtime_mod._process_map_task).parameters
        (item_param,) = params.values()
        annotation = str(item_param.annotation)
        assert "MapReduceJob" not in annotation
        assert "InputSplit" in annotation

    def test_pool_sized_for_reduce_phase(self, monkeypatch):
        """Regression: one pool serves both phases, so it must be sized by
        ``max(len(splits), num_reducers)`` — sizing by splits alone
        silently serializes reduce phases wider than the map phase."""
        sizes = []
        real_pool = runtime_mod.ProcessPoolExecutor

        def recording_pool(*args, **kwargs):
            sizes.append(kwargs["max_workers"])
            return real_pool(*args, **kwargs)

        monkeypatch.setattr(runtime_mod, "ProcessPoolExecutor", recording_pool)
        job = MapReduceJob(
            mapper=_mod4_mapper,
            reducer=_sleeping_reducer,
            num_reducers=4,
            partitioner=_identity_partitioner,
            name="w",
        )
        start = time.monotonic()
        result = ProcessExecutor(max_workers=8).run(job, make_splits(2))
        wall = time.monotonic() - start
        assert sizes == [4]
        totals = dict(result.flat_outputs())
        assert totals == {k: sum(x for x in range(20) if x % 4 == k) for k in range(4)}
        # Each partition holds exactly one key, so all four reduce tasks
        # sleep once and ran in one wave. A pool capped at len(splits)=2
        # needs two waves, so its reduce phase alone takes ≥ 2×_REDUCE_SLEEP.
        assert wall < 2 * _REDUCE_SLEEP


class TestStreamingShuffle:
    def test_matches_serial(self):
        job = make_job(3)
        splits = make_splits(8)
        serial = SerialExecutor().run(job, splits)
        stream = ProcessExecutor(max_workers=2, shuffle="streaming").run(job, splits)
        assert stream.outputs == serial.outputs
        assert stream.shuffle_keys == serial.shuffle_keys

    def test_record_order_and_shuffle_bytes(self):
        """Records stay in split/partition order despite as_completed
        scheduling, and map spill bytes balance reduce fetch bytes."""
        result = ProcessExecutor(max_workers=2, shuffle="streaming").run(
            make_job(3), make_splits(6)
        )
        assert [r.task_id for r in result.map_records()] == [
            f"t/map/{i:05d}" for i in range(6)
        ]
        assert [r.task_id for r in result.reduce_records()] == [
            f"t/reduce/{i:05d}" for i in range(3)
        ]
        out_bytes = sum(r.shuffle_bytes_out for r in result.map_records())
        in_bytes = sum(r.shuffle_bytes_in for r in result.reduce_records())
        assert out_bytes == in_bytes > 0

    def test_empty_partitions(self):
        """More reducers than keys: empty runs (zero-length slices) flow
        through the streaming shuffle without pickling or attaching."""
        job = make_job(8)  # only 5 distinct keys exist
        splits = make_splits(1)
        serial = SerialExecutor().run(job, splits)
        stream = ProcessExecutor(max_workers=2, shuffle="streaming").run(job, splits)
        assert stream.outputs == serial.outputs

    def test_inline_fallback_without_shm(self, monkeypatch):
        """With shared memory unavailable, runs ride inline through the
        result pipe — same outputs, bytes still accounted."""
        monkeypatch.setattr(shm_mod, "HAVE_SHARED_MEMORY", False)
        job = make_job(2)
        splits = make_splits(4)
        stream = ProcessExecutor(max_workers=2, shuffle="streaming").run(job, splits)
        assert dict(stream.flat_outputs()) == expected_totals(4)
        assert sum(r.shuffle_bytes_out for r in stream.map_records()) > 0

    def test_barrier_leaves_shuffle_bytes_zero(self):
        result = ProcessExecutor(max_workers=2, shuffle="barrier").run(
            make_job(2), make_splits(4)
        )
        assert all(r.shuffle_bytes_out == 0 for r in result.map_records())
        assert all(r.shuffle_bytes_in == 0 for r in result.reduce_records())

    def test_unknown_shuffle_rejected(self):
        with pytest.raises(ValueError):
            ProcessExecutor(max_workers=2, shuffle="wat")
        with pytest.raises(ValueError):
            runtime_mod.WorkerPool(max_workers=2, shuffle="wat")


class TestResolveExecutor:
    def test_names(self):
        assert resolve_executor(None).kind == "serial"
        assert resolve_executor("serial").kind == "serial"
        assert resolve_executor("threads", 3).max_workers == 3
        assert resolve_executor("processes", 2).max_workers == 2
        assert set(EXECUTOR_KINDS) == {"serial", "threads", "processes"}

    def test_shuffle_passthrough(self):
        assert resolve_executor("processes", 2).shuffle == "streaming"
        assert resolve_executor("processes", 2, shuffle="barrier").shuffle == "barrier"
        assert set(runtime_mod.SHUFFLE_KINDS) == {"barrier", "streaming"}

    def test_instance_passthrough(self):
        ex = ThreadedExecutor(2)
        assert resolve_executor(ex) is ex

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            resolve_executor("gpu")

    def test_bad_type(self):
        with pytest.raises(TypeError):
            resolve_executor(42)


class TestTaskRecordScaling:
    def test_scaled(self):
        from repro.mapreduce.types import TaskRecord

        rec = TaskRecord(task_id="x", kind=TaskKind.MAP, duration=2.0)
        assert rec.scaled(3.0).duration == 6.0

    def test_scaled_preserves_executor_tags(self):
        from repro.mapreduce.types import TaskRecord

        rec = TaskRecord(
            task_id="x", kind=TaskKind.MAP, duration=2.0,
            executor="threads", contended=True,
        )
        scaled = rec.scaled(2.0)
        assert scaled.executor == "threads"
        assert scaled.contended
        assert not scaled.simulator_safe

    def test_scale_positive(self):
        from repro.mapreduce.types import TaskRecord

        rec = TaskRecord(task_id="x", kind=TaskKind.MAP, duration=2.0)
        with pytest.raises(ValueError):
            rec.scaled(0.0)

    def test_negative_duration_rejected(self):
        from repro.mapreduce.types import TaskRecord

        with pytest.raises(ValueError):
            TaskRecord(task_id="x", kind=TaskKind.MAP, duration=-1.0)
