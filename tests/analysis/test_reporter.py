"""Reporter tests: text rendering, versioned JSON, lossless round-trip."""

import json

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.findings import Finding, Severity
from repro.analysis.reporter import (
    JSON_FORMAT_VERSION,
    findings_from_json,
    render_json,
    render_text,
)


def mk(line=3, rule="ORL004", suppressed=False, severity=Severity.WARNING):
    return Finding(
        path="src/x.py",
        line=line,
        col=4,
        rule=rule,
        severity=severity,
        message="msg",
        suppressed=suppressed,
    )


class TestRenderText:
    def test_gcc_style_line(self):
        out = render_text([mk()])
        assert "src/x.py:3:4: ORL004 warning: msg" in out

    def test_summary_counts_per_rule(self):
        out = render_text([mk(rule="ORL004"), mk(line=5, rule="ORL004"), mk(rule="ORL006")])
        assert "3 finding(s)" in out
        assert "ORL004×2" in out and "ORL006×1" in out

    def test_clean_summary(self):
        assert render_text([]).strip() == "orionlint: clean"

    def test_suppressed_hidden_by_default(self):
        out = render_text([mk(suppressed=True)])
        assert "src/x.py" not in out
        assert "clean (1 suppressed finding(s))" in out

    def test_show_suppressed(self):
        out = render_text([mk(suppressed=True)], show_suppressed=True)
        assert "(suppressed)" in out


class TestRenderJson:
    def test_document_shape(self):
        doc = json.loads(render_json([mk(), mk(suppressed=True, line=9)]))
        assert doc["version"] == JSON_FORMAT_VERSION
        assert doc["total"] == 1
        assert doc["suppressed"] == 1
        assert doc["counts"] == {"ORL004": 1}
        assert len(doc["findings"]) == 2

    def test_round_trip(self):
        original = [mk(), mk(line=9, rule="ORL006", severity=Severity.ERROR)]
        assert findings_from_json(render_json(original)) == original

    def test_version_mismatch_rejected(self):
        doc = json.loads(render_json([mk()]))
        doc["version"] = 99
        with pytest.raises(ValueError, match="version"):
            findings_from_json(json.dumps(doc))


finding_strategy = st.builds(
    Finding,
    path=st.text(min_size=1, max_size=40),
    line=st.integers(min_value=1, max_value=100_000),
    col=st.integers(min_value=0, max_value=500),
    rule=st.sampled_from([f"ORL00{i}" for i in range(8)]),
    severity=st.sampled_from(list(Severity)),
    message=st.text(max_size=120),
    suppressed=st.booleans(),
)


class TestJsonRoundTripProperty:
    @given(st.lists(finding_strategy, max_size=20))
    def test_render_then_parse_is_identity(self, findings):
        assert findings_from_json(render_json(findings)) == findings

    @given(st.lists(finding_strategy, max_size=20))
    def test_counts_match_active_findings(self, findings):
        doc = json.loads(render_json(findings))
        live = [f for f in findings if not f.suppressed]
        assert doc["total"] == len(live)
        assert sum(doc["counts"].values()) == len(live)
        assert doc["suppressed"] == len(findings) - len(live)
