"""Race-sanitizer tests: planted mutations are caught, honest jobs are silent."""

import pytest

from repro.analysis.sanitizer import (
    SanitizerExecutor,
    SharedStateMutationError,
    fingerprint,
)
from repro.core.orion import OrionSearch
from repro.mapreduce.job import MapReduceJob
from repro.mapreduce.runtime import SerialExecutor, resolve_executor
from repro.mapreduce.types import InputSplit
from tests.conftest import alignment_keys


# -- module-level task callables (honest and deliberately broken) --------- #


def pure_mapper(split):
    yield split.index % 2, split.payload


def pure_reducer(key, values):
    yield key, sorted(values)


class LeakyMapper:
    """The ORL002 bug shape at runtime: accumulates state across tasks."""

    def __init__(self):
        self.seen = []

    def __call__(self, split):
        self.seen.append(split.index)
        yield split.index % 2, split.payload


def payload_mutating_mapper(split):
    split.payload.append(99)
    yield split.index, len(split.payload)


def splits(n=4):
    return [InputSplit(index=i, payload=i * 10) for i in range(n)]


# ------------------------------------------------------------------------- #


class TestFingerprint:
    def test_equal_objects_equal_digests(self):
        assert fingerprint({"a": [1, 2]}) == fingerprint({"a": [1, 2]})

    def test_mutation_changes_digest(self):
        obj = {"a": [1, 2]}
        before = fingerprint(obj)
        obj["a"].append(3)
        assert fingerprint(obj) != before

    def test_unpicklable_falls_back_to_structure(self):
        captured = []

        def closure():
            return captured

        before = fingerprint(closure)
        captured.append(1)
        assert fingerprint(closure) != before


class TestSanitizerExecutor:
    def test_clean_job_is_silent_and_matches_serial(self):
        job = MapReduceJob(mapper=pure_mapper, reducer=pure_reducer, num_reducers=2)
        sanitizer = SanitizerExecutor(on_mutation="raise")
        result = sanitizer.run(job, splits())
        assert sanitizer.reports == []
        serial = SerialExecutor().run(job, splits())
        assert result.outputs == serial.outputs
        assert all(r.executor == "sanitizer" for r in result.records)

    def test_leaky_mapper_detected(self):
        job = MapReduceJob(mapper=LeakyMapper(), reducer=pure_reducer, name="leaky")
        sanitizer = SanitizerExecutor(on_mutation="record")
        sanitizer.run(job, splits())
        assert sanitizer.reports
        first = sanitizer.reports[0]
        assert first.component == "mapper"
        assert first.task_id == "leaky/map/00000"

    def test_raise_mode(self):
        job = MapReduceJob(mapper=LeakyMapper(), reducer=pure_reducer)
        with pytest.raises(SharedStateMutationError) as excinfo:
            SanitizerExecutor(on_mutation="raise").run(job, splits())
        assert excinfo.value.mutations

    def test_warn_mode(self):
        job = MapReduceJob(mapper=LeakyMapper(), reducer=pure_reducer)
        sanitizer = SanitizerExecutor(on_mutation="warn")
        with pytest.warns(RuntimeWarning, match="mutated shared state"):
            sanitizer.run(job, splits())

    def test_payload_mutation_detected(self):
        job = MapReduceJob(mapper=payload_mutating_mapper, reducer=pure_reducer)
        sanitizer = SanitizerExecutor(on_mutation="record")
        sanitizer.run(job, [InputSplit(index=i, payload=[i]) for i in range(3)])
        assert any(m.component.startswith("split[") for m in sanitizer.reports)

    def test_payload_check_can_be_disabled(self):
        job = MapReduceJob(mapper=payload_mutating_mapper, reducer=pure_reducer)
        sanitizer = SanitizerExecutor(on_mutation="record", check_payloads=False)
        sanitizer.run(job, [InputSplit(index=i, payload=[i]) for i in range(3)])
        assert sanitizer.reports == []

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError, match="on_mutation"):
            SanitizerExecutor(on_mutation="explode")

    def test_resolve_executor_spec(self):
        executor = resolve_executor("sanitizer")
        assert isinstance(executor, SanitizerExecutor)
        assert executor.kind == "sanitizer"


class TestOrionUnderSanitizer:
    def test_real_job_is_silent_and_bit_identical(self, small_db, query_with_truth):
        """Acceptance: the sanitizer must not fire on the real Orion job and
        must leave results identical to the serial executor's."""
        query, _ = query_with_truth
        sanitizer = SanitizerExecutor(on_mutation="raise")
        sanitized = OrionSearch(
            database=small_db,
            num_shards=4,
            fragment_length=12_000,
            executor=sanitizer,
        ).run(query)
        assert sanitizer.reports == []
        serial = OrionSearch(
            database=small_db, num_shards=4, fragment_length=12_000
        ).run(query)
        assert alignment_keys(sanitized.alignments) == alignment_keys(
            serial.alignments
        )
