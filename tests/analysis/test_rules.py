"""Per-rule fixture tests: each ORL rule on minimal positive/negative snippets."""

import textwrap

from repro.analysis.engine import analyze_source
from repro.analysis.findings import Severity
from repro.analysis.rules import default_rules
from repro.analysis.rules.determinism_rules import (
    UnorderedIterationRule,
    UnseededRandomnessRule,
)
from repro.analysis.rules.hygiene_rules import (
    BareExceptRule,
    LiteralMeasurementRule,
    MutableDefaultRule,
)
from repro.analysis.rules.mapreduce_rules import (
    TaskCallableMutationRule,
    TaskCallablePicklableRule,
)
from repro.analysis.rules.resource_rules import (
    PlaneLeaseLifecycleRule,
    SharedMemoryLifecycleRule,
)
from repro.analysis.rules.robustness_rules import RetryBackoffRule


def run_rule(rule, source):
    return analyze_source(textwrap.dedent(source), "snippet.py", [rule])


def rule_ids(findings):
    return [f.rule for f in findings]


class TestDefaultRuleSet:
    def test_ten_rules_in_id_order(self):
        ids = [r.rule_id for r in default_rules()]
        assert ids == [f"ORL00{i}" for i in range(1, 10)] + ["ORL010"]
        assert ids == sorted(ids)

    def test_every_rule_documents_its_invariant(self):
        for rule in default_rules():
            assert rule.invariant, rule.rule_id
            assert rule.title, rule.rule_id


class TestORL001Picklable:
    def test_lambda_argument_flagged(self):
        findings = run_rule(
            TaskCallablePicklableRule(),
            """\
            from repro.mapreduce.job import MapReduceJob
            job = MapReduceJob(mapper=lambda s: [], reducer=my_reducer)
            """,
        )
        assert rule_ids(findings) == ["ORL001"]
        assert findings[0].line == 2
        assert findings[0].severity is Severity.ERROR
        assert "lambda" in findings[0].message

    def test_name_bound_to_lambda_flagged(self):
        findings = run_rule(
            TaskCallablePicklableRule(),
            """\
            from repro.mapreduce.job import MapReduceJob
            m = lambda s: []
            job = MapReduceJob(mapper=m, reducer=my_reducer)
            """,
        )
        assert rule_ids(findings) == ["ORL001"]
        assert findings[0].line == 3

    def test_nested_function_flagged(self):
        findings = run_rule(
            TaskCallablePicklableRule(),
            """\
            from repro.mapreduce.job import MapReduceJob

            def build():
                def mapper(split):
                    yield 1, 2
                return MapReduceJob(mapper=mapper, reducer=my_reducer)
            """,
        )
        assert rule_ids(findings) == ["ORL001"]
        assert "nested function" in findings[0].message

    def test_module_level_def_ok(self):
        findings = run_rule(
            TaskCallablePicklableRule(),
            """\
            from repro.mapreduce.job import MapReduceJob

            def mapper(split):
                yield 1, 2

            def reducer(key, values):
                yield key

            job = MapReduceJob(mapper=mapper, reducer=reducer)
            """,
        )
        assert findings == []

    def test_callable_instance_ok(self):
        # Instances pickle by state — the sanctioned way to parameterize.
        findings = run_rule(
            TaskCallablePicklableRule(),
            """\
            from repro.mapreduce.job import MapReduceJob
            job = MapReduceJob(mapper=FragmentMapper(db), reducer=my_reducer)
            """,
        )
        assert findings == []

    def test_positional_arguments_also_checked(self):
        findings = run_rule(
            TaskCallablePicklableRule(),
            """\
            from repro.mapreduce.job import MapReduceJob
            job = MapReduceJob(lambda s: [], lambda k, v: [])
            """,
        )
        assert rule_ids(findings) == ["ORL001", "ORL001"]


class TestORL002SharedMutation:
    def test_global_dict_mutation_flagged(self):
        findings = run_rule(
            TaskCallableMutationRule(),
            """\
            from repro.mapreduce.job import MapReduceJob

            STATS = {}

            def mapper(split):
                STATS["n"] = 1
                yield 1, 2

            job = MapReduceJob(mapper=mapper, reducer=my_reducer)
            """,
        )
        assert rule_ids(findings) == ["ORL002"]
        assert findings[0].line == 6
        assert "STATS" in findings[0].message

    def test_mutating_method_on_global_flagged(self):
        findings = run_rule(
            TaskCallableMutationRule(),
            """\
            from repro.mapreduce.job import MapReduceJob

            SEEN = []

            def reducer(key, values):
                SEEN.append(key)
                yield key

            job = MapReduceJob(mapper=my_mapper, reducer=reducer)
            """,
        )
        assert rule_ids(findings) == ["ORL002"]
        assert "SEEN" in findings[0].message

    def test_local_accumulation_ok(self):
        findings = run_rule(
            TaskCallableMutationRule(),
            """\
            from repro.mapreduce.job import MapReduceJob

            def mapper(split):
                acc = []
                acc.append(split)
                yield 1, acc

            job = MapReduceJob(mapper=mapper, reducer=my_reducer)
            """,
        )
        assert findings == []

    def test_unreferenced_function_not_checked(self):
        # Mutation is only an ORL002 problem in *task* callables.
        findings = run_rule(
            TaskCallableMutationRule(),
            """\
            CACHE = {}

            def warm(key):
                CACHE[key] = True
            """,
        )
        assert findings == []


class TestORL003UnseededRandomness:
    def test_stdlib_random_call_flagged(self):
        findings = run_rule(
            UnseededRandomnessRule(),
            """\
            import random
            x = random.random()
            """,
        )
        assert rule_ids(findings) == ["ORL003"]
        assert findings[0].severity is Severity.ERROR

    def test_from_import_flagged(self):
        findings = run_rule(
            UnseededRandomnessRule(),
            """\
            from random import randint
            x = randint(0, 10)
            """,
        )
        assert rule_ids(findings) == ["ORL003"]

    def test_numpy_legacy_global_flagged(self):
        findings = run_rule(
            UnseededRandomnessRule(),
            """\
            import numpy as np
            x = np.random.rand(3)
            """,
        )
        assert rule_ids(findings) == ["ORL003"]

    def test_argless_default_rng_flagged(self):
        findings = run_rule(
            UnseededRandomnessRule(),
            """\
            import numpy as np
            rng = np.random.default_rng()
            """,
        )
        assert rule_ids(findings) == ["ORL003"]
        assert "seed" in findings[0].message

    def test_seeded_default_rng_ok(self):
        findings = run_rule(
            UnseededRandomnessRule(),
            """\
            import numpy as np
            rng = np.random.default_rng(42)
            x = rng.normal(size=10)
            """,
        )
        assert findings == []

    def test_unrelated_name_random_ok(self):
        # A local module/object that happens to be called "random" but was
        # never imported from stdlib random is not flagged.
        findings = run_rule(
            UnseededRandomnessRule(),
            """\
            x = rng.random()
            """,
        )
        assert findings == []


class TestORL004UnorderedIteration:
    def test_for_over_set_literal_flagged(self):
        findings = run_rule(
            UnorderedIterationRule(),
            """\
            for x in {1, 2, 3}:
                print(x)
            """,
        )
        assert rule_ids(findings) == ["ORL004"]
        assert findings[0].severity is Severity.WARNING

    def test_for_over_set_call_flagged(self):
        findings = run_rule(
            UnorderedIterationRule(),
            """\
            for x in set(items):
                out.append(x)
            """,
        )
        assert rule_ids(findings) == ["ORL004"]

    def test_listcomp_over_dict_values_flagged(self):
        findings = run_rule(
            UnorderedIterationRule(),
            """\
            ys = [v for v in d.values()]
            """,
        )
        assert rule_ids(findings) == ["ORL004"]

    def test_list_of_values_flagged(self):
        findings = run_rule(
            UnorderedIterationRule(),
            """\
            ys = list(d.values())
            """,
        )
        assert rule_ids(findings) == ["ORL004"]

    def test_sum_of_values_ok(self):
        findings = run_rule(
            UnorderedIterationRule(),
            """\
            total = sum(v for v in d.values())
            """,
        )
        assert findings == []

    def test_sorted_values_ok(self):
        findings = run_rule(
            UnorderedIterationRule(),
            """\
            ys = sorted(d.values())
            zs = [k for k in sorted(d.keys())]
            """,
        )
        assert findings == []

    def test_setcomp_over_items_ok(self):
        # Result is itself unordered; no order leaks.
        findings = run_rule(
            UnorderedIterationRule(),
            """\
            keys = {k for k, v in d.items()}
            table = {k: v for k, v in d.items()}
            """,
        )
        assert findings == []

    def test_for_over_list_ok(self):
        findings = run_rule(
            UnorderedIterationRule(),
            """\
            for x in [1, 2, 3]:
                print(x)
            """,
        )
        assert findings == []


class TestORL005MutableDefault:
    def test_list_default_flagged(self):
        findings = run_rule(
            MutableDefaultRule(),
            """\
            def f(xs=[]):
                return xs
            """,
        )
        assert rule_ids(findings) == ["ORL005"]
        assert "'f'" in findings[0].message

    def test_dict_call_default_flagged(self):
        findings = run_rule(
            MutableDefaultRule(),
            """\
            def f(*, table=dict()):
                return table
            """,
        )
        assert rule_ids(findings) == ["ORL005"]

    def test_none_default_ok(self):
        findings = run_rule(
            MutableDefaultRule(),
            """\
            def f(xs=None, n=3, name="x"):
                return xs or []
            """,
        )
        assert findings == []


class TestORL006BareExcept:
    def test_bare_except_flagged(self):
        findings = run_rule(
            BareExceptRule(),
            """\
            try:
                work()
            except:
                handle()
            """,
        )
        assert rule_ids(findings) == ["ORL006"]
        assert "bare except" in findings[0].message

    def test_swallowed_exception_flagged(self):
        findings = run_rule(
            BareExceptRule(),
            """\
            try:
                work()
            except ValueError:
                pass
            """,
        )
        assert rule_ids(findings) == ["ORL006"]
        assert "swallows" in findings[0].message

    def test_handled_exception_ok(self):
        findings = run_rule(
            BareExceptRule(),
            """\
            try:
                work()
            except ValueError as exc:
                log(exc)
                raise
            """,
        )
        assert findings == []


class TestORL007LiteralMeasurement:
    def test_literal_records_keyword_flagged(self):
        findings = run_rule(
            LiteralMeasurementRule(),
            """\
            rec = TaskRecord(task_id="t", input_records=1, output_records=n)
            """,
        )
        assert rule_ids(findings) == ["ORL007"]
        assert "input_records" in findings[0].message

    def test_count_keyword_on_record_type_flagged(self):
        findings = run_rule(
            LiteralMeasurementRule(),
            """\
            rec = WorkUnitRecord(hit_count=7)
            """,
        )
        assert rule_ids(findings) == ["ORL007"]

    def test_count_keyword_on_config_call_ok(self):
        # Generation *configuration* is not a measurement (datasets.py).
        findings = run_rule(
            LiteralMeasurementRule(),
            """\
            spec = make_dataset(repeat_family_count=1)
            """,
        )
        assert findings == []

    def test_zero_and_variables_ok(self):
        findings = run_rule(
            LiteralMeasurementRule(),
            """\
            rec = TaskRecord(input_records=0, output_records=len(pairs))
            """,
        )
        assert findings == []


class TestORL008SharedMemoryLifecycle:
    def test_unpaired_create_flagged(self):
        findings = run_rule(
            SharedMemoryLifecycleRule(),
            """\
            from multiprocessing import shared_memory

            def publish(data):
                seg = shared_memory.SharedMemory(create=True, size=len(data))
                seg.buf[: len(data)] = data
                return seg
            """,
        )
        assert rule_ids(findings) == ["ORL008"]
        assert "close/unlink" in findings[0].message

    def test_unpaired_attach_flagged(self):
        findings = run_rule(
            SharedMemoryLifecycleRule(),
            """\
            from multiprocessing.shared_memory import SharedMemory

            def peek(name):
                seg = SharedMemory(name=name)
                return bytes(seg.buf)
            """,
        )
        assert rule_ids(findings) == ["ORL008"]

    def test_release_in_finally_ok(self):
        findings = run_rule(
            SharedMemoryLifecycleRule(),
            """\
            from multiprocessing.shared_memory import SharedMemory

            def publish(data):
                seg = SharedMemory(create=True, size=len(data))
                ok = False
                try:
                    seg.buf[: len(data)] = data
                    ok = True
                    return seg
                finally:
                    if not ok:
                        seg.close()
                        seg.unlink()
            """,
        )
        assert findings == []

    def test_context_manager_ok(self):
        findings = run_rule(
            SharedMemoryLifecycleRule(),
            """\
            from multiprocessing.shared_memory import SharedMemory

            def peek(name):
                with SharedMemory(name=name) as seg:
                    return bytes(seg.buf)
            """,
        )
        assert findings == []

    def test_nested_def_is_its_own_scope(self):
        # A finally in the outer function must not excuse an acquisition
        # inside a nested def (it cannot guard it at runtime).
        findings = run_rule(
            SharedMemoryLifecycleRule(),
            """\
            from multiprocessing.shared_memory import SharedMemory

            def outer():
                seg = None
                try:
                    pass
                finally:
                    if seg is not None:
                        seg.close()

                def inner(name):
                    return SharedMemory(name=name)

                return inner
            """,
        )
        assert rule_ids(findings) == ["ORL008"]

    def test_unrelated_call_ok(self):
        findings = run_rule(
            SharedMemoryLifecycleRule(),
            """\
            def build(name):
                return SomeFactory(name=name)
            """,
        )
        assert findings == []


class TestORL010PlaneLeaseLifecycle:
    def test_unpaired_attach_or_create_flagged(self):
        findings = run_rule(
            PlaneLeaseLifecycleRule(),
            """\
            from repro.mapreduce.shm import PlaneRegistry

            def search(db, k):
                lease = PlaneRegistry.attach_or_create(db, k)
                return run_with(lease.handle)
            """,
        )
        assert rule_ids(findings) == ["ORL010"]
        assert "release" in findings[0].message

    def test_release_in_finally_ok(self):
        findings = run_rule(
            PlaneLeaseLifecycleRule(),
            """\
            from repro.mapreduce.shm import PlaneRegistry

            def search(db, k):
                lease = PlaneRegistry.attach_or_create(db, k)
                try:
                    return run_with(lease.handle)
                finally:
                    lease.release()
            """,
        )
        assert findings == []

    def test_context_manager_ok(self):
        findings = run_rule(
            PlaneLeaseLifecycleRule(),
            """\
            from repro.mapreduce.shm import PlaneRegistry

            def search(db, k):
                with PlaneRegistry.attach_or_create(db, k) as lease:
                    return run_with(lease.handle)
            """,
        )
        assert findings == []

    def test_reap_in_finally_ok(self):
        findings = run_rule(
            PlaneLeaseLifecycleRule(),
            """\
            from repro.mapreduce.shm import PlaneRegistry, reap_orphan_planes

            def search(db, k):
                lease = PlaneRegistry.attach_or_create(db, k)
                try:
                    return run_with(lease.handle)
                finally:
                    reap_orphan_planes()
            """,
        )
        assert findings == []

    def test_nested_def_is_its_own_scope(self):
        findings = run_rule(
            PlaneLeaseLifecycleRule(),
            """\
            from repro.mapreduce.shm import PlaneRegistry

            def outer():
                lease = None
                try:
                    pass
                finally:
                    if lease is not None:
                        lease.release()

                def inner(db, k):
                    return PlaneRegistry.attach_or_create(db, k)

                return inner
            """,
        )
        assert rule_ids(findings) == ["ORL010"]

    def test_waiver_comment_suppresses(self):
        findings = run_rule(
            PlaneLeaseLifecycleRule(),
            """\
            from repro.mapreduce.shm import PlaneRegistry

            def adopt(self, db, k):
                self._lease = PlaneRegistry.attach_or_create(  # orionlint: disable=ORL010
                    db, k
                )
            """,
        )
        assert rule_ids(findings) == ["ORL010"]
        assert findings[0].suppressed  # waived, does not fail the run

    def test_unrelated_call_ok(self):
        findings = run_rule(
            PlaneLeaseLifecycleRule(),
            """\
            def build(name):
                return SomeFactory.attach(name=name)
            """,
        )
        assert findings == []


class TestORL009RetryBackoff:
    def test_time_sleep_attribute_call_flagged(self):
        findings = run_rule(
            RetryBackoffRule(),
            """\
            import time

            def backoff():
                time.sleep(1.0)
            """,
        )
        assert rule_ids(findings) == ["ORL009"]
        assert findings[0].line == 4
        assert findings[0].severity is Severity.ERROR
        assert "time.sleep" in findings[0].message

    def test_from_import_sleep_flagged(self):
        findings = run_rule(
            RetryBackoffRule(),
            """\
            from time import sleep

            def backoff():
                sleep(0.5)
            """,
        )
        assert rule_ids(findings) == ["ORL009"]
        assert findings[0].line == 4

    def test_other_sleep_name_not_flagged(self):
        # A local `sleep` that is not time.sleep (e.g. an injected hook)
        # is exactly the blessed pattern; only the stdlib one is flagged.
        findings = run_rule(
            RetryBackoffRule(),
            """\
            def wait(policy, delay):
                policy.sleep(delay)

            def wait2(sleep, delay):
                sleep(delay)
            """,
        )
        assert findings == []

    def test_unbounded_retry_loop_flagged(self):
        findings = run_rule(
            RetryBackoffRule(),
            """\
            def fetch():
                while True:
                    try:
                        return attempt()
                    except OSError:
                        continue
            """,
        )
        assert rule_ids(findings) == ["ORL009"]
        assert findings[0].line == 2
        assert "attempt bound" in findings[0].message

    def test_while_one_also_infinite(self):
        findings = run_rule(
            RetryBackoffRule(),
            """\
            while 1:
                try:
                    step()
                except ValueError:
                    pass
            """,
        )
        assert rule_ids(findings) == ["ORL009"]

    def test_handler_reraise_bounds_the_loop(self):
        # The canonical bounded idiom: count attempts, re-raise at budget.
        findings = run_rule(
            RetryBackoffRule(),
            """\
            def fetch(budget):
                attempt = 0
                while True:
                    try:
                        return step()
                    except OSError:
                        attempt += 1
                        if attempt >= budget:
                            raise
            """,
        )
        assert findings == []

    def test_handler_break_exits_instead_of_retrying(self):
        findings = run_rule(
            RetryBackoffRule(),
            """\
            while True:
                try:
                    step()
                except ValueError:
                    break
            """,
        )
        assert findings == []

    def test_bounded_for_loop_not_flagged(self):
        findings = run_rule(
            RetryBackoffRule(),
            """\
            for attempt in range(3):
                try:
                    step()
                    break
                except OSError:
                    continue
            """,
        )
        assert findings == []

    def test_conditioned_while_not_flagged(self):
        findings = run_rule(
            RetryBackoffRule(),
            """\
            def drain(queue):
                while queue.pending():
                    try:
                        queue.pop()
                    except KeyError:
                        pass
            """,
        )
        assert findings == []

    def test_infinite_loop_without_try_not_flagged(self):
        # Infinite service loops without exception swallowing are the
        # splitter/fragmenter idiom: their bodies break explicitly.
        findings = run_rule(
            RetryBackoffRule(),
            """\
            while True:
                chunk = read()
                if not chunk:
                    break
                emit(chunk)
            """,
        )
        assert findings == []

    def test_nested_def_does_not_excuse_or_implicate(self):
        # A raise inside a nested def cannot bound the enclosing loop,
        # and a sleep inside a nested def is still a sleep.
        findings = run_rule(
            RetryBackoffRule(),
            """\
            import time

            while True:
                try:
                    step()
                except OSError:
                    def explode():
                        raise RuntimeError
            """,
        )
        assert rule_ids(findings) == ["ORL009"]
        assert findings[0].line == 3

    def test_suppression_comment_respected(self):
        findings = run_rule(
            RetryBackoffRule(),
            """\
            import time

            def hang(seconds):
                time.sleep(seconds)  # orionlint: disable=ORL009
            """,
        )
        assert rule_ids(findings) == ["ORL009"]
        assert findings[0].suppressed is True
