"""CLI tests for ``python -m repro.analysis``: exit codes and output formats."""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis.__main__ import main

REPO_ROOT = Path(__file__).resolve().parents[2]

CLEAN_SOURCE = "def f(x):\n    return x + 1\n"
BAD_SOURCE = "def f(xs=[]):\n    return xs\n"


@pytest.fixture
def clean_file(tmp_path):
    path = tmp_path / "clean.py"
    path.write_text(CLEAN_SOURCE)
    return path


@pytest.fixture
def bad_file(tmp_path):
    path = tmp_path / "bad.py"
    path.write_text(BAD_SOURCE)
    return path


class TestExitCodes:
    def test_clean_file_exits_zero(self, clean_file, capsys):
        assert main([str(clean_file)]) == 0
        assert "orionlint: clean" in capsys.readouterr().out

    def test_finding_exits_one_with_location(self, bad_file, capsys):
        assert main([str(bad_file)]) == 1
        out = capsys.readouterr().out
        assert f"{bad_file}:1:" in out
        assert "ORL005" in out and "error" in out

    def test_unknown_rule_exits_two(self, bad_file, capsys):
        assert main(["--rules", "NOPE", str(bad_file)]) == 2
        assert "unknown rule id" in capsys.readouterr().err

    def test_suppressed_finding_exits_zero(self, tmp_path, capsys):
        path = tmp_path / "s.py"
        path.write_text("def f(xs=[]):  # orionlint: disable=ORL005\n    return xs\n")
        assert main([str(path)]) == 0


class TestOptions:
    def test_json_format(self, bad_file, capsys):
        assert main(["--format", "json", str(bad_file)]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["total"] == 1
        assert doc["findings"][0]["rule"] == "ORL005"

    def test_rules_filter(self, tmp_path, capsys):
        path = tmp_path / "two.py"
        path.write_text(
            "def f(xs=[]):\n"
            "    try:\n"
            "        return xs\n"
            "    except:\n"
            "        return None\n"
        )
        assert main(["--rules", "ORL006", str(path)]) == 1
        out = capsys.readouterr().out
        assert "ORL006" in out and "ORL005" not in out

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for i in range(1, 8):
            assert f"ORL00{i}" in out
        assert "invariant:" in out


class TestSubprocessEntry:
    def test_module_invocation_on_clean_file(self, clean_file):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        proc = subprocess.run(
            [sys.executable, "-m", "repro.analysis", str(clean_file)],
            capture_output=True,
            text=True,
            env=env,
            cwd=str(REPO_ROOT),
        )
        assert proc.returncode == 0, proc.stderr
        assert "orionlint: clean" in proc.stdout
