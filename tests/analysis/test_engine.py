"""Engine tests: suppressions, parse failures, path walking, repo cleanliness."""

import textwrap
from pathlib import Path

import pytest

from repro.analysis.engine import (
    PARSE_RULE_ID,
    analyze_paths,
    analyze_source,
    parse_suppressions,
    select_rules,
)
from repro.analysis.findings import Severity, active
from repro.analysis.rules import default_rules
from repro.analysis.rules.determinism_rules import UnorderedIterationRule

REPO_ROOT = Path(__file__).resolve().parents[2]


def analyze(source, rules=None):
    return analyze_source(
        textwrap.dedent(source), "snippet.py", rules or [UnorderedIterationRule()]
    )


class TestSuppressions:
    def test_line_suppression_marks_but_keeps_finding(self):
        findings = analyze(
            """\
            ys = list(d.values())  # orionlint: disable=ORL004
            """
        )
        assert len(findings) == 1
        assert findings[0].suppressed
        assert active(findings) == []

    def test_suppression_on_other_line_does_not_apply(self):
        findings = analyze(
            """\
            # orionlint: disable=ORL004
            ys = list(d.values())
            """
        )
        assert len(findings) == 1
        assert not findings[0].suppressed

    def test_file_level_suppression(self):
        findings = analyze(
            """\
            # orionlint: disable-file=ORL004
            ys = list(d.values())
            zs = list(d.keys())
            """
        )
        assert len(findings) == 2
        assert all(f.suppressed for f in findings)

    def test_all_wildcard(self):
        findings = analyze(
            """\
            ys = list(d.values())  # orionlint: disable=all
            """
        )
        assert findings[0].suppressed

    def test_multiple_rules_in_one_comment(self):
        per_line, whole_file = parse_suppressions(
            "x = 1  # orionlint: disable=ORL004,ORL007\n"
        )
        assert per_line == {1: {"ORL004", "ORL007"}}
        assert whole_file == set()

    def test_trailing_justification_after_rule_list(self):
        # Prose after the rule ids (set off by a non-identifier char) is fine.
        findings = analyze(
            """\
            ys = list(d.values())  # orionlint: disable=ORL004 -- spec order
            """
        )
        assert findings[0].suppressed

    def test_other_rules_stay_active_on_suppressed_line(self):
        findings = analyze(
            """\
            ys = list(d.values())  # orionlint: disable=ORL003
            """
        )
        assert not findings[0].suppressed


class TestParseFailure:
    def test_syntax_error_becomes_orl000(self):
        findings = analyze_source("def f(:\n", "bad.py", default_rules())
        assert len(findings) == 1
        assert findings[0].rule == PARSE_RULE_ID
        assert findings[0].severity is Severity.ERROR
        assert "does not parse" in findings[0].message


class TestSelectRules:
    def test_empty_selection_keeps_all(self):
        rules = default_rules()
        assert select_rules(rules) == rules

    def test_subset_selected(self):
        rules = select_rules(default_rules(), ["ORL004", "ORL005"])
        assert sorted(r.rule_id for r in rules) == ["ORL004", "ORL005"]

    def test_unknown_rule_raises(self):
        with pytest.raises(ValueError, match="unknown rule id"):
            select_rules(default_rules(), ["ORL999"])


class TestAnalyzePaths:
    def test_walks_directory_skipping_pycache(self, tmp_path):
        (tmp_path / "a.py").write_text("ys = list(d.values())\n")
        cache = tmp_path / "__pycache__"
        cache.mkdir()
        (cache / "b.py").write_text("ys = list(d.values())\n")
        findings = analyze_paths([str(tmp_path)], [UnorderedIterationRule()])
        assert len(findings) == 1
        assert findings[0].path == str(tmp_path / "a.py")

    def test_findings_sorted_by_location(self, tmp_path):
        (tmp_path / "b.py").write_text("ys = list(d.values())\n")
        (tmp_path / "a.py").write_text("zs = list(d.values())\nws = list(d.keys())\n")
        findings = analyze_paths([str(tmp_path)], [UnorderedIterationRule()])
        locations = [(f.path, f.line) for f in findings]
        assert locations == sorted(locations)


class TestRepoIsClean:
    def test_src_tree_has_no_active_findings(self):
        """The acceptance gate: orionlint on src/ must stay clean."""
        findings = analyze_paths([str(REPO_ROOT / "src")], default_rules())
        offenders = [(f.path, f.line, f.rule, f.message) for f in active(findings)]
        assert offenders == []
