"""Tests for cluster specs and execution profiles."""

import pytest

from repro.cluster.topology import ClusterSpec, ExecutionProfile


class TestClusterSpec:
    def test_total_slots(self):
        assert ClusterSpec(nodes=4, cores_per_node=16).total_slots == 64

    def test_gordon_preset(self):
        g = ClusterSpec.gordon(64)
        assert g.total_slots == 1024
        assert g.cores_per_node == 16

    def test_node_of_slot(self):
        c = ClusterSpec(nodes=2, cores_per_node=3)
        assert [c.node_of_slot(s) for s in range(6)] == [0, 0, 0, 1, 1, 1]

    def test_slot_bounds(self):
        c = ClusterSpec(nodes=2, cores_per_node=2)
        with pytest.raises(ValueError):
            c.node_of_slot(4)

    def test_validation(self):
        with pytest.raises(ValueError):
            ClusterSpec(nodes=0)


class TestExecutionProfile:
    def test_defaults_zero(self):
        p = ExecutionProfile()
        assert p.job_setup_seconds == 0.0

    def test_hadoop_has_constant_overhead(self):
        """The Fig. 10 crossover depends on this being substantial."""
        h = ExecutionProfile.hadoop()
        b = ExecutionProfile.multithread()
        assert h.job_setup_seconds > 5 * b.job_setup_seconds

    def test_mpi_cheaper_than_hadoop(self):
        assert (
            ExecutionProfile.mpi().job_setup_seconds
            < ExecutionProfile.hadoop().job_setup_seconds
        )

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            ExecutionProfile(job_setup_seconds=-1)
