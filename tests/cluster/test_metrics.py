"""Tests for load-balance and speedup metrics."""

import numpy as np
import pytest

from repro.cluster.metrics import (
    coefficient_of_variation,
    load_imbalance,
    parallel_efficiency,
    speedup_curve,
)


class TestCoefficientOfVariation:
    def test_paper_table_iii_numbers(self):
        """The paper reports mean 315.78, std 182.18, CV 0.58 — i.e. the
        standard std/mean definition despite the text's inverted wording."""
        assert 182.18 / 315.78 == pytest.approx(0.58, abs=0.01)

    def test_uniform_zero(self):
        assert coefficient_of_variation([5.0, 5.0, 5.0]) == 0.0

    def test_known_value(self):
        cv = coefficient_of_variation([1.0, 3.0])
        assert cv == pytest.approx(1.0 / 2.0)

    def test_all_zero(self):
        assert coefficient_of_variation([0.0, 0.0]) == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            coefficient_of_variation([])

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            coefficient_of_variation([1.0, -1.0])


class TestLoadImbalance:
    def test_balanced(self):
        assert load_imbalance([2.0, 2.0]) == 1.0

    def test_imbalanced(self):
        assert load_imbalance([4.0, 0.0]) == 2.0

    def test_idle_cluster(self):
        assert load_imbalance([0.0, 0.0]) == 1.0


class TestParallelEfficiency:
    def test_linear_speedup(self):
        assert parallel_efficiency(4.0, 4.0) == 1.0

    def test_sublinear(self):
        assert parallel_efficiency(3.0, 4.0) == 0.75

    def test_validation(self):
        with pytest.raises(ValueError):
            parallel_efficiency(1.0, 0.0)


class TestSpeedupCurve:
    def test_baseline_is_one(self):
        rows = speedup_curve([64, 128, 1024], [100.0, 55.0, 20.0])
        assert rows[0] == (64, 1.0, 1.0)
        assert rows[2][1] == pytest.approx(5.0)

    def test_efficiency_vs_baseline(self):
        rows = speedup_curve([64, 128], [100.0, 50.0])
        assert rows[1][2] == pytest.approx(1.0)  # perfect scaling

    def test_validation(self):
        with pytest.raises(ValueError):
            speedup_curve([], [])
        with pytest.raises(ValueError):
            speedup_curve([64], [0.0])
