"""Tests for the discrete-event list scheduler."""

import pytest

from repro.cluster.simulator import (
    NodeFailure,
    simulate_phase,
    simulate_phases,
)
from repro.cluster.tasks import SimTask
from repro.cluster.topology import ClusterSpec, ExecutionProfile


def tasks_of(durations):
    return [SimTask(task_id=f"t{i}", duration=d) for i, d in enumerate(durations)]


class TestSimulatePhase:
    def test_single_slot_serializes(self):
        sched = simulate_phase(tasks_of([1, 2, 3]), ClusterSpec(nodes=1, cores_per_node=1))
        assert sched.end_time == pytest.approx(6.0)

    def test_perfect_parallelism(self):
        sched = simulate_phase(tasks_of([2, 2, 2]), ClusterSpec(nodes=3, cores_per_node=1))
        assert sched.end_time == pytest.approx(2.0)

    def test_lower_bounds(self):
        """Makespan >= max task and >= total work / slots."""
        durations = [5, 1, 1, 1, 9, 2, 2]
        cluster = ClusterSpec(nodes=1, cores_per_node=3)
        sched = simulate_phase(tasks_of(durations), cluster)
        assert sched.end_time >= max(durations)
        assert sched.end_time >= sum(durations) / cluster.total_slots - 1e-9

    def test_fifo_greedy_placement(self):
        # Tasks [4, 1, 1, 1] on 2 slots FIFO: slot0=4, slot1=1+1+1 -> makespan 4
        sched = simulate_phase(tasks_of([4, 1, 1, 1]), ClusterSpec(nodes=2, cores_per_node=1))
        assert sched.end_time == pytest.approx(4.0)

    def test_per_task_overhead_applied(self):
        profile = ExecutionProfile(per_task_overhead_seconds=0.5)
        sched = simulate_phase(
            tasks_of([1, 1]), ClusterSpec(nodes=1, cores_per_node=1), profile=profile
        )
        assert sched.end_time == pytest.approx(3.0)

    def test_deterministic(self):
        cluster = ClusterSpec(nodes=2, cores_per_node=2)
        a = simulate_phase(tasks_of([3, 1, 4, 1, 5]), cluster)
        b = simulate_phase(tasks_of([3, 1, 4, 1, 5]), cluster)
        assert [(s.task.task_id, s.start, s.slot) for s in a.scheduled] == [
            (s.task.task_id, s.start, s.slot) for s in b.scheduled
        ]

    def test_busy_accounting(self):
        cluster = ClusterSpec(nodes=2, cores_per_node=1)
        sched = simulate_phase(tasks_of([2, 3]), cluster)
        assert sched.per_slot_busy().sum() == pytest.approx(5.0)
        assert sched.per_node_busy().tolist() == [2.0, 3.0]

    def test_start_time_offset(self):
        sched = simulate_phase(
            tasks_of([1]), ClusterSpec(nodes=1, cores_per_node=1), start_time=10.0
        )
        assert sched.scheduled[0].start == 10.0


class TestPolicies:
    def test_lpt_beats_spt_on_adversarial_mix(self):
        durations = [8, 1, 1, 1, 1, 1, 1, 1, 8]
        cluster = ClusterSpec(nodes=2, cores_per_node=1)
        lpt = simulate_phase(tasks_of(durations), cluster, policy="lpt")
        spt = simulate_phase(tasks_of(durations), cluster, policy="spt")
        assert lpt.end_time <= spt.end_time

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            simulate_phase(tasks_of([1]), ClusterSpec(nodes=1, cores_per_node=1), policy="magic")


class TestFailures:
    def test_task_reruns_after_failure(self):
        cluster = ClusterSpec(nodes=2, cores_per_node=1)
        sched = simulate_phase(
            tasks_of([10, 1]), cluster, failures=[NodeFailure(node=0, time=3.0)]
        )
        completed = {s.task.task_id for s in sched.completed_tasks()}
        assert completed == {"t0", "t1"}
        failed = [s for s in sched.scheduled if not s.completed]
        assert len(failed) == 1
        assert failed[0].end == 3.0
        # t0 re-ran on node 1 after its first attempt died
        rerun = [s for s in sched.completed_tasks() if s.task.task_id == "t0"]
        assert rerun[0].node == 1
        assert rerun[0].attempt == 2

    def test_all_nodes_failed_raises(self):
        cluster = ClusterSpec(nodes=1, cores_per_node=1)
        with pytest.raises(RuntimeError, match="no surviving slots"):
            simulate_phase(tasks_of([10, 10]), cluster, failures=[NodeFailure(0, 1.0)])

    def test_failure_validation(self):
        cluster = ClusterSpec(nodes=1, cores_per_node=1)
        with pytest.raises(ValueError):
            simulate_phase(tasks_of([1]), cluster, failures=[NodeFailure(5, 1.0)])


class TestSimulatePhases:
    def test_barrier_between_phases(self):
        cluster = ClusterSpec(nodes=2, cores_per_node=1)
        sched = simulate_phases([tasks_of([3, 1]), tasks_of([1])], cluster)
        reduce_start = [s for s in sched.scheduled if s.task.task_id == "t0"][-1]
        phase1_tasks = sched.scheduled[:2]
        assert min(s.start for s in sched.scheduled[2:]) >= max(
            s.end for s in phase1_tasks
        )

    def test_setup_teardown_in_makespan(self):
        profile = ExecutionProfile(job_setup_seconds=5, job_teardown_seconds=2)
        sched = simulate_phases(
            [tasks_of([1])], ClusterSpec(nodes=1, cores_per_node=1), profile=profile
        )
        assert sched.makespan == pytest.approx(8.0)

    def test_empty_job_pays_constants(self):
        profile = ExecutionProfile(job_setup_seconds=5, job_teardown_seconds=2)
        sched = simulate_phases([[]], ClusterSpec(nodes=1, cores_per_node=1), profile=profile)
        assert sched.makespan == pytest.approx(7.0)

    def test_phase_ends_recorded(self):
        sched = simulate_phases(
            [tasks_of([1]), tasks_of([2])], ClusterSpec(nodes=1, cores_per_node=1)
        )
        assert len(sched.phase_ends) == 2
        assert sched.phase_ends[0] <= sched.phase_ends[1]

    def test_more_slots_never_slower(self):
        durations = [3, 1, 4, 1, 5, 9, 2, 6, 5, 3]
        small = simulate_phases([tasks_of(durations)], ClusterSpec(nodes=1, cores_per_node=2))
        big = simulate_phases([tasks_of(durations)], ClusterSpec(nodes=2, cores_per_node=4))
        assert big.makespan <= small.makespan + 1e-9
