"""Tests for SimTask conversion and ordering policies."""

import pytest

from repro.cluster.policies import order_tasks
from repro.cluster.tasks import SimTask, records_to_tasks
from repro.mapreduce.types import TaskKind, TaskRecord


def recs():
    return [
        TaskRecord(task_id="m0", kind=TaskKind.MAP, duration=1.0),
        TaskRecord(task_id="m1", kind=TaskKind.MAP, duration=2.0),
        TaskRecord(task_id="r0", kind=TaskKind.REDUCE, duration=3.0),
    ]


class TestRecordsToTasks:
    def test_all_records(self):
        tasks = records_to_tasks(recs())
        assert [t.task_id for t in tasks] == ["m0", "m1", "r0"]

    def test_kind_filter(self):
        tasks = records_to_tasks(recs(), kind=TaskKind.MAP)
        assert [t.task_id for t in tasks] == ["m0", "m1"]

    def test_scale_hook(self):
        tasks = records_to_tasks(recs(), scale=lambda r: 2.0 if r.kind is TaskKind.MAP else 1.0)
        assert [t.duration for t in tasks] == [2.0, 4.0, 3.0]

    def test_bad_scale_rejected(self):
        with pytest.raises(ValueError):
            records_to_tasks(recs(), scale=lambda r: 0.0)

    def test_simtask_validation(self):
        with pytest.raises(ValueError):
            SimTask(task_id="", duration=1.0)
        with pytest.raises(ValueError):
            SimTask(task_id="x", duration=-1.0)


class TestOrderTasks:
    def _tasks(self):
        return [SimTask(f"t{i}", d) for i, d in enumerate([3.0, 1.0, 2.0])]

    def test_fifo_preserves_order(self):
        assert [t.task_id for t in order_tasks(self._tasks(), "fifo")] == ["t0", "t1", "t2"]

    def test_lpt_descending(self):
        assert [t.duration for t in order_tasks(self._tasks(), "lpt")] == [3.0, 2.0, 1.0]

    def test_spt_ascending(self):
        assert [t.duration for t in order_tasks(self._tasks(), "spt")] == [1.0, 2.0, 3.0]

    def test_random_deterministic_per_seed(self):
        a = order_tasks(self._tasks(), "random", seed=5)
        b = order_tasks(self._tasks(), "random", seed=5)
        assert [t.task_id for t in a] == [t.task_id for t in b]

    def test_random_is_permutation(self):
        out = order_tasks(self._tasks(), "random", seed=1)
        assert sorted(t.task_id for t in out) == ["t0", "t1", "t2"]

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            order_tasks(self._tasks(), "nope")
