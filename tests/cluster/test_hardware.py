"""Tests for the cache and DP-memory hardware models."""

import pytest

from repro.cluster.hardware import CacheModel, DPMemoryModel, OutOfMemoryError


class TestCacheModel:
    def test_unit_below_threshold(self):
        m = CacheModel(threshold=1_000_000)
        assert m.factor(999_999) == 1.0
        assert m.factor(1_000_000) == 1.0

    def test_polynomial_above_threshold(self):
        m = CacheModel(threshold=1_000_000, exponent=1.2)
        assert m.factor(2_000_000) == pytest.approx(2**1.2)

    def test_monotone(self):
        m = CacheModel()
        assert m.factor(10_000_000) < m.factor(70_000_000)

    def test_fig3_shape(self):
        """Flat below 1 Mbp, rapidly worsening beyond — the paper's Fig. 3."""
        m = CacheModel()
        assert m.factor(3_000) == 1.0
        assert m.factor(500_000) == 1.0
        assert m.factor(10_000_000) > 4
        assert m.factor(99_000_000) > 15

    def test_calibrated_to_paper_longest_query(self):
        """cache(71 Mbp) ≈ 16: with 1.6 Mbp fragments (cache ≈ 1.36) this
        yields the paper's ≈23× Orion win on the 71 Mbp query."""
        m = CacheModel()
        assert 10 < m.factor(71_000_000) < 25

    def test_validation(self):
        with pytest.raises(ValueError):
            CacheModel(threshold=0)
        with pytest.raises(ValueError):
            CacheModel().factor(0)


class TestDPMemoryModel:
    def test_required_bytes(self):
        m = DPMemoryModel(bytes_per_cell=1.0)
        assert m.required_bytes(100, 200) == 20_000

    def test_fits_boundary(self):
        m = DPMemoryModel(node_memory_bytes=1000, bytes_per_cell=1.0)
        assert m.fits(10, 100)
        assert not m.fits(10, 101)

    def test_check_raises_with_paper_style_message(self):
        m = DPMemoryModel()
        with pytest.raises(OutOfMemoryError, match="Gb of memory for dynamic programming"):
            m.check(99_000_000, 25_000_000)

    def test_paper_failure_threshold(self):
        """Defaults: the ceiling sits at ≈96 Mbp for a Drosophila-scale
        longest scaffold — 71 Mbp queries run, >96 Mbp abort (Section V-C)."""
        m = DPMemoryModel()
        longest_scaffold = 25_000_000  # Drosophila chromosome-arm scale
        ceiling = m.max_query_length(longest_scaffold)
        assert 90_000_000 < ceiling < 100_000_000
        assert m.fits(71_000_000, longest_scaffold)
        assert not m.fits(97_000_000, longest_scaffold)

    def test_max_query_length_consistent(self):
        m = DPMemoryModel(node_memory_bytes=10_000, bytes_per_cell=1.0)
        ceiling = m.max_query_length(100)
        assert m.fits(ceiling, 100)
        assert not m.fits(ceiling + 1, 100)

    def test_validation(self):
        with pytest.raises(ValueError):
            DPMemoryModel(node_memory_bytes=0)
        with pytest.raises(ValueError):
            DPMemoryModel().required_bytes(0, 10)
